//! # serde (offline shim)
//!
//! A stand-in for `serde` written for this workspace's hermetic (no
//! crates.io) build environment. The workspace only ever *derives*
//! `Serialize`/`Deserialize` and serializes results to JSON for the bench
//! harness; nothing is ever parsed back. That lets this shim be radically
//! simpler than real serde:
//!
//! * [`Serialize`] is a marker trait with a blanket impl for every
//!   `T: Debug`. The local `serde_json` shim renders values by parsing
//!   their `Debug` representation into JSON (see `serde_json::to_value`).
//! * [`Deserialize`] is a pure marker (derive-only in this workspace).
//! * The `#[derive(Serialize, Deserialize)]` macros are no-ops re-exported
//!   from the local `serde_derive` shim — the blanket impls already cover
//!   every deriving type, since they all also derive `Debug`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types that can be rendered by the local `serde_json` shim.
///
/// Blanket-implemented for every `Debug` type: the JSON encoder works from
/// the `Debug` representation, which the workspace's derived types all
/// produce in the standard `{:?}` grammar.
pub trait Serialize: std::fmt::Debug {}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {}

/// Marker for types that declare `#[derive(Deserialize)]`.
///
/// The workspace never deserializes, so no decoding machinery exists; the
/// derive is accepted for source compatibility with real serde.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
