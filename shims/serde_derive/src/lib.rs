//! No-op `Serialize` / `Deserialize` derives for the local serde shim.
//!
//! The serde shim blanket-implements its marker traits for all `Debug`
//! types, so these derives only need to (a) exist, so `#[derive(Serialize)]`
//! resolves, and (b) declare the `#[serde(...)]` helper attribute, so
//! field/container attributes don't error. They expand to nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]`; the serde shim's blanket impl applies.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]`; the serde shim's blanket impl applies.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
