//! # serde_json (offline shim)
//!
//! JSON rendering for the local `serde` shim. The workspace only ever
//! *writes* JSON (bench result files, a metrics round-trip smoke test), so
//! this shim implements encoding only, and it does so without proc macros:
//! the local `serde::Serialize` is blanket-implemented over `Debug`, and
//! this crate parses the std `Debug` grammar (`Name { field: v }`,
//! `Name(v)`, `[a, b]`, `(a, b)`, strings, numbers, `Some`/`None`) into a
//! [`Value`] tree which it renders as JSON.
//!
//! Mapping conventions (close to real serde's defaults):
//!
//! * structs and struct variants → objects (the type/variant name is
//!   dropped, as serde does for structs);
//! * newtype wrappers and `Some(x)` → the inner value; `None` → `null`;
//! * unit enum variants → their name as a string;
//! * tuples and slices → arrays;
//! * tokens that aren't valid JSON numbers (`NaN`, `inf`, `2ms`) → strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, kept verbatim as text.
    Number(String),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// Encoding error. The Debug grammar parser is total (unknown trailing
/// input is tolerated), so in practice this is never produced, but the
/// `Result` return keeps call sites source-compatible with real serde_json.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable (= `Debug`) value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    let debug = format!("{value:?}");
    let mut p = Parser { bytes: debug.as_bytes(), pos: 0 };
    Ok(p.value())
}

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_compact(&v, &mut out);
    Ok(out)
}

/// Render `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_pretty(&v, 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Recursive-descent parser over the std `Debug` grammar.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\n') | Some(b'\t') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Value {
        self.skip_ws();
        match self.peek() {
            None => Value::Null,
            Some(b'"') => Value::String(self.string_literal()),
            Some(b'\'') => Value::String(self.char_literal()),
            Some(b'[') => self.sequence(b'[', b']'),
            Some(b'(') => self.tuple(),
            Some(b'{') => self.braces(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number_like(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.named(),
            Some(_) => {
                // Unknown token: consume one byte so parsing always advances.
                self.pos += 1;
                self.value()
            }
        }
    }

    /// A Rust string literal body, converted to its unescaped text.
    fn string_literal(&mut self) -> String {
        self.pos += 1; // opening quote
        let mut s = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => break,
                b'\\' => {
                    let esc = self.peek().unwrap_or(b'\\');
                    self.pos += 1;
                    match esc {
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'0' => s.push('\0'),
                        b'u' => {
                            // \u{XXXX}
                            let mut hex = String::new();
                            if self.peek() == Some(b'{') {
                                self.pos += 1;
                                while let Some(h) = self.peek() {
                                    self.pos += 1;
                                    if h == b'}' {
                                        break;
                                    }
                                    hex.push(h as char);
                                }
                            }
                            if let Ok(n) = u32::from_str_radix(&hex, 16) {
                                if let Some(ch) = char::from_u32(n) {
                                    s.push(ch);
                                }
                            }
                        }
                        other => s.push(other as char),
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c);
                        let end = (start + len).min(self.bytes.len());
                        if let Ok(frag) = std::str::from_utf8(&self.bytes[start..end]) {
                            s.push_str(frag);
                        }
                        self.pos = end;
                    }
                }
            }
        }
        s
    }

    fn char_literal(&mut self) -> String {
        self.pos += 1; // opening quote
        let mut s = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'\'' {
                break;
            }
            if c == b'\\' {
                if let Some(esc) = self.peek() {
                    self.pos += 1;
                    match esc {
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        other => s.push(other as char),
                    }
                }
            } else {
                s.push(c as char);
            }
        }
        s
    }

    fn sequence(&mut self, open: u8, close: u8) -> Value {
        debug_assert_eq!(self.peek(), Some(open));
        self.pos += 1;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(c) if c == close => {
                    self.pos += 1;
                    break;
                }
                Some(b',') => {
                    self.pos += 1;
                }
                _ => items.push(self.value()),
            }
        }
        Value::Array(items)
    }

    fn tuple(&mut self) -> Value {
        match self.sequence(b'(', b')') {
            Value::Array(items) if items.is_empty() => Value::Null, // `()`
            Value::Array(mut items) if items.len() == 1 => items.pop().unwrap(),
            other => other,
        }
    }

    /// `{ ... }`: a struct body (`field: value`) or a map (`key: value`).
    fn braces(&mut self) -> Value {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'.') => {
                    // `..` from a non-exhaustive Debug impl.
                    self.pos += 1;
                }
                _ => {
                    let key = self.value();
                    self.skip_ws();
                    if self.peek() == Some(b':') {
                        self.pos += 1;
                        let val = self.value();
                        entries.push((key_to_string(key), val));
                    } else {
                        // A set-like Debug ({a, b}): render as array.
                        let mut items = vec![key];
                        loop {
                            self.skip_ws();
                            match self.peek() {
                                None => break,
                                Some(b'}') => {
                                    self.pos += 1;
                                    break;
                                }
                                Some(b',') => self.pos += 1,
                                _ => items.push(self.value()),
                            }
                        }
                        return Value::Array(items);
                    }
                }
            }
        }
        Value::Object(entries)
    }

    /// A bare token starting with a digit or `-`: number, or number-like
    /// text such as `2ms` / `-inf` that must be quoted for valid JSON.
    fn number_like(&mut self) -> Value {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'.' | b'_' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let tok: String =
            std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or_default().replace('_', "");
        if tok.parse::<i128>().is_ok() {
            return Value::Number(tok);
        }
        match tok.parse::<f64>() {
            Ok(f) if f.is_finite() => Value::Number(tok),
            _ => Value::String(tok),
        }
    }

    /// An identifier: `true`/`false`, `None`, a struct/variant name
    /// followed by `(`/`{`, or a bare unit variant.
    fn named(&mut self) -> Value {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name =
            std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or_default().to_string();
        match name.as_str() {
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            "None" => return Value::Null,
            _ => {}
        }
        self.skip_ws();
        match self.peek() {
            Some(b'(') => self.tuple(),
            Some(b'{') => self.braces(),
            _ => Value::String(name),
        }
    }
}

fn key_to_string(key: Value) -> String {
    match key {
        Value::String(s) => s,
        Value::Number(n) => n,
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
        other => {
            let mut s = String::new();
            write_compact(&other, &mut s);
            s
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fields are "read" only through Debug formatting, which dead-code
    // analysis does not count.
    #[derive(Debug)]
    #[allow(dead_code)]
    struct Metrics {
        rounds: u64,
        ratio: f64,
        per_machine: Vec<u64>,
        label: Option<String>,
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    enum Mode {
        Unlimited,
        Enforce { bits_per_round: u64 },
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Wrapper(u64);

    #[test]
    fn struct_renders_as_object() {
        let m = Metrics {
            rounds: 3,
            ratio: 1.5,
            per_machine: vec![1, 2],
            label: Some("hi \"there\"".into()),
        };
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"rounds":3,"ratio":1.5,"per_machine":[1,2],"label":"hi \"there\""}"#);
    }

    #[test]
    fn enums_options_and_newtypes() {
        assert_eq!(to_string(&Mode::Unlimited).unwrap(), r#""Unlimited""#);
        assert_eq!(
            to_string(&Mode::Enforce { bits_per_round: 64 }).unwrap(),
            r#"{"bits_per_round":64}"#
        );
        assert_eq!(to_string(&Wrapper(9)).unwrap(), "9");
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(4u64)).unwrap(), "4");
    }

    #[test]
    fn non_json_numerics_become_strings() {
        assert_eq!(to_string(&f64::NAN).unwrap(), r#""NaN""#);
        assert_eq!(to_string(&f64::INFINITY).unwrap(), r#""inf""#);
        assert_eq!(to_string(&std::time::Duration::from_millis(2)).unwrap(), r#""2ms""#);
    }

    #[test]
    fn tuples_and_maps() {
        assert_eq!(to_string(&(1u8, 2u8, 3u8)).unwrap(), "[1,2,3]");
        let mut map = std::collections::BTreeMap::new();
        map.insert(1u32, "a");
        map.insert(2, "b");
        assert_eq!(to_string(&map).unwrap(), r#"{"1":"a","2":"b"}"#);
    }

    #[test]
    fn pretty_output_is_indented_and_valid() {
        let m = Metrics { rounds: 1, ratio: 0.5, per_machine: vec![7], label: None };
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains("\n  \"rounds\": 1"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn floats_keep_exponent_notation() {
        assert_eq!(to_string(&1e-9f64).unwrap(), "1e-9");
        assert_eq!(to_string(&-2.5f64).unwrap(), "-2.5");
    }
}
