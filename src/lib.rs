//! # knn-repro — umbrella crate for the SPAA 2020 k-NN reproduction
//!
//! Re-exports the full public API of the workspace:
//!
//! * [`kmachine`] — the k-machine model simulator (engines, bandwidth,
//!   metrics, leader election);
//! * [`points`] — points, metrics, distance keys;
//! * [`selection`] — sequential selection algorithms;
//! * [`kdtree`] — the k-d tree substrate;
//! * [`workloads`] — synthetic data and adversarial partitions;
//! * [`core`] — the paper's distributed algorithms and the
//!   [`core::cluster::KnnCluster`] facade.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! experiment harness that regenerates the paper's figure and tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kmachine;
pub use knn_core as core;
pub use knn_kdtree as kdtree;
pub use knn_points as points;
pub use knn_selection as selection;
pub use knn_workloads as workloads;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use kmachine::{
        BandwidthMode, DeliveryMode, Engine, NetConfig, RunMetrics, SkewMetrics, TagMetrics,
    };
    pub use knn_core::cluster::{BatchAnswer, KnnAnswer, KnnCluster, Neighbor};
    pub use knn_core::local::IndexedPoint;
    pub use knn_core::ml::{KnnClassifier, KnnRegressor};
    pub use knn_core::runner::{Algorithm, ElectionKind, QueryOptions};
    pub use knn_core::session::QuerySession;
    pub use knn_points::{
        Dataset, Dist, DistKey, IdAssigner, Label, Metric, Point, PointId, Record, ScalarPoint,
        VecPoint,
    };
    pub use knn_workloads::{GaussianMixture, PartitionStrategy, QueryStream, ScalarWorkload};
}
