//! Adversarial data layouts: the model allows points to be distributed
//! adversarially (§1.1); correctness must not depend on balance or order.

use knn_repro::points::brute_force_knn;
use knn_repro::prelude::*;
use knn_repro::workloads::partition::ALL_STRATEGIES;

fn sorted_dataset(n: u64) -> Dataset<ScalarPoint> {
    let mut ids = IdAssigner::new(2);
    Dataset::from_points((0..n).map(ScalarPoint).collect(), &mut ids)
}

#[test]
fn sorted_contiguous_layout_every_algorithm() {
    // All the smallest values (the likely answer) sit on machine 0.
    let data = sorted_dataset(2000);
    let all = data.records.clone();
    let q = ScalarPoint(0);
    let want: Vec<PointId> =
        brute_force_knn(&all, &q, 25, Metric::Euclidean).into_iter().map(|(k, _)| k.id).collect();

    let mut cluster: KnnCluster = KnnCluster::builder().machines(8).seed(1).build();
    cluster.load(data, PartitionStrategy::Contiguous);
    for algo in Algorithm::ALL {
        let got: Vec<PointId> =
            cluster.query_with(algo, &q, 25).unwrap().neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "{algo:?}");
    }
}

#[test]
fn one_machine_hoards_everything() {
    let data = sorted_dataset(500);
    let all = data.records.clone();
    let q = ScalarPoint(250);
    let want: Vec<PointId> =
        brute_force_knn(&all, &q, 11, Metric::Euclidean).into_iter().map(|(k, _)| k.id).collect();

    let mut cluster: KnnCluster = KnnCluster::builder().machines(6).seed(3).build();
    cluster.load(data, PartitionStrategy::OneMachine);
    for algo in Algorithm::ALL {
        let got: Vec<PointId> =
            cluster.query_with(algo, &q, 11).unwrap().neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "{algo:?}");
    }
}

#[test]
fn every_strategy_same_answer() {
    let data = sorted_dataset(1200);
    let q = ScalarPoint(999_999); // beyond the data: answer is the top end
    let mut reference: Option<Vec<PointId>> = None;
    for strat in ALL_STRATEGIES {
        let mut cluster: KnnCluster = KnnCluster::builder().machines(5).seed(4).build();
        cluster.load(data.clone(), strat);
        let got: Vec<PointId> =
            cluster.query(&q, 30).unwrap().neighbors.iter().map(|n| n.id).collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{strat:?}"),
        }
    }
}

#[test]
fn more_machines_than_points() {
    let data = sorted_dataset(5);
    let mut cluster: KnnCluster = KnnCluster::builder().machines(12).seed(5).build();
    cluster.load(data, PartitionStrategy::RoundRobin);
    for algo in Algorithm::ALL {
        let ans = cluster.query_with(algo, &ScalarPoint(3), 4).unwrap();
        assert_eq!(ans.neighbors.len(), 4, "{algo:?}");
    }
}

#[test]
fn clustered_values_near_query() {
    // Heavy duplication right at the query point plus far outliers.
    let mut points = vec![ScalarPoint(1000); 300];
    points.extend((0..300).map(|i| ScalarPoint(2_000_000 + i)));
    let mut ids = IdAssigner::new(9);
    let data = Dataset::from_points(points, &mut ids);
    let all = data.records.clone();
    let q = ScalarPoint(1000);
    let want: Vec<PointId> =
        brute_force_knn(&all, &q, 310, Metric::Euclidean).into_iter().map(|(k, _)| k.id).collect();

    let mut cluster: KnnCluster = KnnCluster::builder().machines(7).seed(6).build();
    cluster.load(data, PartitionStrategy::Shuffled);
    for algo in Algorithm::ALL {
        let got: Vec<PointId> =
            cluster.query_with(algo, &q, 310).unwrap().neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "{algo:?}");
    }
}

#[test]
fn extreme_values_do_not_overflow() {
    let mut ids = IdAssigner::new(10);
    let data = Dataset::from_points(
        vec![ScalarPoint(0), ScalarPoint(u64::MAX), ScalarPoint(u64::MAX / 2), ScalarPoint(1)],
        &mut ids,
    );
    let mut cluster: KnnCluster = KnnCluster::builder().machines(2).seed(7).build();
    cluster.load(data, PartitionStrategy::RoundRobin);
    for algo in Algorithm::ALL {
        // |0 - u64::MAX| must not wrap.
        let ans = cluster.query_with(algo, &ScalarPoint(u64::MAX), 2).unwrap();
        assert_eq!(ans.neighbors[0].dist.as_u64(), 0, "{algo:?}");
        assert_eq!(ans.neighbors[1].dist.as_u64(), 1 << 63, "{algo:?}");
    }
}
