//! Integration coverage for the approximate query path and leader-election
//! composition through the public API.

use knn_repro::prelude::*;

fn loaded(k: usize, election: ElectionKind, engine: Engine) -> KnnCluster {
    let shards = ScalarWorkload { per_machine: 2000, lo: 0, hi: 1 << 24 }.generate(k, 17);
    let mut cluster: KnnCluster =
        KnnCluster::builder().machines(k).seed(5).election(election).engine(engine).build();
    cluster.load_shards(shards).unwrap();
    cluster
}

#[test]
fn approx_superset_on_every_engine() {
    for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
        let cluster = loaded(6, ElectionKind::Fixed, engine);
        let q = ScalarPoint(1 << 23);
        let exact = cluster.query(&q, 100).unwrap();
        let approx = cluster.query_approx(&q, 100).unwrap();
        assert!(approx.neighbors.len() >= 100, "{engine:?}");
        assert_eq!(&approx.neighbors[..100], &exact.neighbors[..], "{engine:?}");
        assert!(approx.metrics.rounds < exact.metrics.rounds, "{engine:?}");
    }
}

#[test]
fn approx_with_huge_ell_returns_everything() {
    let cluster = loaded(4, ElectionKind::Fixed, Engine::Sync);
    let approx = cluster.query_approx(&ScalarPoint(9), 1_000_000).unwrap();
    assert_eq!(approx.neighbors.len(), cluster.total_points());
}

#[test]
fn elected_leader_is_respected_by_the_protocol() {
    // With the flood election the leader varies by seed; the answer must
    // not, and the reported leader must match who coordinated.
    let mut leaders = std::collections::HashSet::new();
    let mut answers = Vec::new();
    for seed in 0..6 {
        let shards = ScalarWorkload { per_machine: 500, lo: 0, hi: 1 << 20 }.generate(5, 3);
        let mut cluster: KnnCluster =
            KnnCluster::builder().machines(5).seed(seed).election(ElectionKind::Flood).build();
        cluster.load_shards(shards).unwrap();
        let ans = cluster.query(&ScalarPoint(1 << 19), 9).unwrap();
        leaders.insert(ans.leader);
        answers.push(ans.neighbors.iter().map(|n| n.id).collect::<Vec<_>>());
        assert!(ans.election_metrics.is_some());
    }
    assert!(leaders.len() >= 2, "flood election should vary the leader across seeds");
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "answer independent of leader");
}

#[test]
fn election_cost_is_separated_from_query_cost() {
    let fixed = loaded(8, ElectionKind::Fixed, Engine::Sync);
    let star = loaded(8, ElectionKind::Star, Engine::Sync);
    let q = ScalarPoint(42);
    let a = fixed.query(&q, 20).unwrap();
    let b = star.query(&q, 20).unwrap();
    // Identical answers; the election cost is reported separately (the
    // main protocol's exact trace legitimately varies with the elected
    // leader's identity, since pivots are drawn from the leader's stream).
    assert_eq!(
        a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
    );
    assert_eq!(a.election_metrics, None);
    let em = b.election_metrics.unwrap();
    assert_eq!(em.messages, 14); // 2(k-1)
    assert_eq!(em.rounds, 2);
}
