//! The batched serving layer end to end: `query_batch` must return exactly
//! what sequential `query` calls return — for every algorithm and every
//! election mode — while paying one election and one engine run per batch.

use knn_repro::prelude::*;
use proptest::prelude::*;

fn loaded_cluster(k: usize, n: usize, election: ElectionKind, seed: u64) -> KnnCluster {
    let shards = ScalarWorkload { per_machine: n, lo: 0, hi: 1 << 20 }.generate(k, seed);
    let mut cluster: KnnCluster =
        KnnCluster::builder().machines(k).seed(seed).election(election).build();
    cluster.load_shards(shards).unwrap();
    cluster
}

fn neighbor_ids(ans: &KnnAnswer) -> Vec<PointId> {
    ans.neighbors.iter().map(|n| n.id).collect()
}

#[test]
fn batch_equals_sequential_for_every_algorithm_and_election() {
    for election in [ElectionKind::Fixed, ElectionKind::Star, ElectionKind::Flood] {
        let cluster = loaded_cluster(5, 600, election, 3);
        let queries: Vec<ScalarPoint> = QueryStream::scalar(6, 6, 0, 1 << 20, 11).next().unwrap();
        for algo in Algorithm::ALL {
            let batch = cluster.query_batch_with(algo, &queries, 9).unwrap();
            assert_eq!(batch.answers.len(), queries.len());
            for (j, q) in queries.iter().enumerate() {
                let solo = cluster.query_with(algo, q, 9).unwrap();
                assert_eq!(
                    batch.answers[j].neighbors, solo.neighbors,
                    "{algo:?} / {election:?} query {j}"
                );
                // Batched per-query answers report no private election: the
                // batch's single election is on the BatchAnswer.
                assert!(batch.answers[j].election_metrics.is_none());
            }
        }
    }
}

#[test]
fn sixty_four_queries_pay_exactly_one_election() {
    // The acceptance bar: 64 queries, one election, answers identical to
    // sequential serving.
    for (election, expected_messages) in [(ElectionKind::Star, 2 * 7), (ElectionKind::Flood, 8 * 7)]
    {
        let cluster = loaded_cluster(8, 512, election, 5);
        let queries: Vec<ScalarPoint> = QueryStream::scalar(64, 64, 0, 1 << 20, 21).next().unwrap();
        let batch = cluster.query_batch(&queries, 8).unwrap();
        let em = batch.election_metrics.as_ref().expect("an election ran");
        assert_eq!(
            em.messages, expected_messages,
            "{election:?}: exactly one election's worth of messages"
        );
        for (j, q) in queries.iter().enumerate() {
            assert_eq!(
                neighbor_ids(&batch.answers[j]),
                neighbor_ids(&cluster.query(q, 8).unwrap()),
                "{election:?} query {j}"
            );
        }
    }
}

#[test]
fn batched_rounds_per_query_strictly_below_sequential_for_simple() {
    let cluster = loaded_cluster(6, 2048, ElectionKind::Star, 9);
    let queries: Vec<ScalarPoint> = QueryStream::scalar(64, 64, 0, 1 << 20, 2).next().unwrap();
    let batch = cluster.query_batch_with(Algorithm::Simple, &queries, 64).unwrap();
    let batched_rounds =
        batch.metrics.rounds + batch.election_metrics.as_ref().map_or(0, |em| em.rounds);
    let sequential_rounds: u64 = queries
        .iter()
        .map(|q| {
            let ans = cluster.query_with(Algorithm::Simple, q, 64).unwrap();
            ans.metrics.rounds + ans.election_metrics.as_ref().map_or(0, |em| em.rounds)
        })
        .sum();
    assert!(
        batched_rounds < sequential_rounds,
        "batched {batched_rounds} rounds for 64 queries vs sequential {sequential_rounds}"
    );
}

#[test]
fn batch_metrics_attribute_traffic_per_query() {
    let cluster = loaded_cluster(4, 800, ElectionKind::Fixed, 1);
    let queries: Vec<ScalarPoint> = QueryStream::scalar(5, 5, 0, 1 << 20, 4).next().unwrap();
    let batch = cluster.query_batch_with(Algorithm::Simple, &queries, 16).unwrap();
    // Every message of the batch run belongs to exactly one query tag.
    assert_eq!(batch.metrics.per_tag.len(), queries.len());
    let tag_messages: u64 = batch.metrics.per_tag.iter().map(|t| t.messages).sum();
    let tag_bits: u64 = batch.metrics.per_tag.iter().map(|t| t.bits).sum();
    assert_eq!(tag_messages, batch.metrics.messages);
    assert_eq!(tag_bits, batch.metrics.bits);
    for ans in &batch.answers {
        assert!(ans.metrics.messages > 0);
        assert!(ans.metrics.bits > 0);
        assert!(ans.metrics.rounds <= batch.metrics.rounds);
    }
}

#[test]
fn batch_on_both_engines_agrees() {
    let shards = ScalarWorkload { per_machine: 700, lo: 0, hi: 1 << 18 }.generate(4, 13);
    let queries: Vec<ScalarPoint> = QueryStream::scalar(4, 4, 0, 1 << 18, 6).next().unwrap();
    let run = |engine| {
        let mut cluster: KnnCluster =
            KnnCluster::builder().machines(4).seed(2).engine(engine).build();
        cluster.load_shards(shards.clone()).unwrap();
        cluster.query_batch_with(Algorithm::Knn, &queries, 12).unwrap()
    };
    let a = run(Engine::Sync);
    let b = run(Engine::Threaded);
    for j in 0..queries.len() {
        assert_eq!(a.answers[j].neighbors, b.answers[j].neighbors, "query {j}");
    }
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.messages, b.metrics.messages);
    assert_eq!(a.metrics.bits, b.metrics.bits);
    assert_eq!(a.metrics.per_tag, b.metrics.per_tag);
}

#[test]
fn batch_approx_contains_the_exact_batch() {
    let cluster = loaded_cluster(6, 3000, ElectionKind::Fixed, 8);
    let queries: Vec<ScalarPoint> = QueryStream::scalar(3, 3, 0, 1 << 20, 5).next().unwrap();
    let exact = cluster.query_batch(&queries, 50).unwrap();
    let approx = cluster.query_batch_approx(&queries, 50).unwrap();
    for j in 0..queries.len() {
        let sup = &approx.answers[j].neighbors;
        let sub = &exact.answers[j].neighbors;
        assert!(sup.len() >= sub.len(), "query {j}");
        assert_eq!(&sup[..sub.len()], &sub[..], "exact answer must be a prefix of approx");
    }
}

#[test]
fn empty_batch_and_unloaded_cluster() {
    let cluster = loaded_cluster(3, 50, ElectionKind::Fixed, 0);
    let empty = cluster.query_batch(&[], 5).unwrap();
    assert!(empty.answers.is_empty());
    assert_eq!(empty.metrics.messages, 0);

    let unloaded: KnnCluster = KnnCluster::builder().machines(3).build();
    assert!(unloaded.query_batch(&[ScalarPoint(1)], 2).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Randomized parity: any cluster shape, any ℓ, any batch, every
    /// algorithm — batch answers equal sequential answers key for key.
    #[test]
    fn prop_query_batch_matches_sequential_queries(
        k in 1usize..5,
        n in 1usize..200,
        ell in 0usize..12,
        m in 1usize..5,
        algo_idx in 0usize..4,
        seed in 0u64..500,
    ) {
        let algo = Algorithm::ALL[algo_idx];
        let cluster = loaded_cluster(k, n, ElectionKind::Star, seed);
        let queries: Vec<ScalarPoint> =
            QueryStream::scalar(m, m, 0, 1 << 20, seed ^ 0xAB).next().unwrap();
        let batch = cluster.query_batch_with(algo, &queries, ell).unwrap();
        prop_assert!(batch.election_metrics.is_some());
        for (j, q) in queries.iter().enumerate() {
            let solo = cluster.query_with(algo, q, ell).unwrap();
            prop_assert_eq!(
                &batch.answers[j].neighbors, &solo.neighbors,
                "{:?} query {}", algo, j
            );
        }
    }
}
