//! Chaos suite: deterministic fault injection through the serving stack.
//!
//! The [`kmachine::FaultPlan`] injectors are *seeded, not sampled*: the
//! same plan produces the same drops, the same crash observations, and
//! the same recovery path on every engine and every pool size. That turns
//! fault testing into the same metamorphic game the engine-conformance
//! suite plays — a faulty run either equals its fault-free reference
//! byte-for-byte (stragglers), or degrades along an exactly reproducible
//! path (crashes: re-election, surviving-shard answers, `degraded`
//! flags), or fails with a typed error (lossy links past the retry
//! budget) — never a hang, never a silently wrong answer.
//!
//! One test also writes `results/chaos_metrics.json`, the artifact the CI
//! chaos leg uploads.

use kmachine::error::EngineError;
use kmachine::{AdversaryPlan, DeliveryMode, Engine, FaultPlan, RecoveryPlan};
use knn_core::cluster::{KnnCluster, Neighbor};
use knn_core::error::CoreError;
use knn_core::runner::{Algorithm, ElectionKind};
use knn_core::IndexBackend;
use knn_points::{Dataset, Record, ScalarPoint};
use knn_workloads::ScalarWorkload;
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

/// A loaded cluster over the standard scalar workload: Fixed election
/// (leader is machine 0 until a crash forces a re-election), seeded
/// shards, the given engine/delivery/fault plan.
fn cluster(
    k: usize,
    seed: u64,
    engine: Engine,
    delivery: DeliveryMode,
    faults: FaultPlan,
) -> KnnCluster {
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(engine)
        .delivery(delivery)
        .election(ElectionKind::Fixed)
        .faults(faults)
        .build();
    cluster.load_shards(shards).expect("shard count");
    cluster
}

/// A loaded cluster scheduled to self-heal: no fail-stop faults, but a
/// crash-then-rejoin recovery plan (checkpoint/restore inside the run).
fn healing_cluster(k: usize, seed: u64, engine: Engine, recovery: RecoveryPlan) -> KnnCluster {
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(engine)
        .election(ElectionKind::Fixed)
        .recovery(recovery)
        .build();
    cluster.load_shards(shards).expect("shard count");
    cluster
}

fn queries(seed: u64, n: u64) -> Vec<ScalarPoint> {
    (0..n).map(|i| ScalarPoint(seed.wrapping_mul(127).wrapping_add(i * 811))).collect()
}

/// Neighbor lists reduced to what must survive a shard-count change:
/// point ids and distances (machine ids are shard-local labels and
/// legitimately differ between a k-cluster and its survivor sub-cluster).
fn ids_and_dists(neighbors: &[Neighbor]) -> Vec<(knn_points::PointId, knn_points::Dist)> {
    neighbors.iter().map(|n| (n.id, n.dist)).collect()
}

/// Stragglers are pure wall-clock: every answer, every metric, and every
/// flag of a straggling run — on every engine, every pool size — is
/// byte-identical to the fault-free lockstep reference. Only the clock
/// (and, under relaxed delivery, the recorded skew) may differ.
#[test]
fn stragglers_change_nothing_but_wall_clock() {
    let (seed, k, ell) = (9u64, 4usize, 8usize);
    let qs = queries(seed, 5);
    let want = with_pool(1, || {
        let c = cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default());
        c.query_batch_with(Algorithm::Knn, &qs, ell).expect("baseline")
    });
    assert!(!want.degraded);
    assert!(!want.faults.any());
    let plan = FaultPlan::default().with_straggler(1, 4).with_straggler(3, 8);
    for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
        for pool in [1usize, 8] {
            let got = with_pool(pool, || {
                let c = cluster(k, seed, engine, DeliveryMode::Exact, plan.clone());
                c.query_batch_with(Algorithm::Knn, &qs, ell).expect("straggling batch")
            });
            let label = format!("{engine:?}/pool {pool}");
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.neighbors, w.neighbors, "straggler answers diverged: {label}");
            }
            assert_eq!(got.metrics, want.metrics, "straggler metrics diverged: {label}");
            assert!(!got.degraded, "a slow machine is not a failure: {label}");
            assert_eq!(got.shards_used, k, "{label}");
            assert!(!got.faults.any(), "stragglers realize no faults: {label}");
        }
    }
}

/// A crashed leader is survivable: the query layer re-elects over the
/// survivors, re-runs fault-free, and flags the answer as degraded with
/// the surviving shard count — for **every** algorithm. The degraded
/// answer equals what a fault-free cluster of just the survivors says.
#[test]
fn leader_crash_re_elects_and_degrades_for_every_algorithm() {
    let (seed, k, ell) = (17u64, 5usize, 7usize);
    let q = ScalarPoint(seed.wrapping_mul(127));
    let shards = ScalarWorkload::small(512).generate(k, seed);
    // The fault-free reference: the surviving four shards as their own
    // cluster (machine ids shift by one; ids and distances must match).
    let mut survivors: KnnCluster =
        KnnCluster::builder().machines(k - 1).seed(seed).election(ElectionKind::Fixed).build();
    survivors.load_shards(shards[1..].to_vec()).expect("shard count");
    for algo in Algorithm::ALL {
        let crashed = cluster(
            k,
            seed,
            Engine::Sync,
            DeliveryMode::Exact,
            FaultPlan::default().with_crash(0, 0),
        );
        let ans = crashed.query_with(algo, &q, ell).expect("crash must be survivable");
        assert!(ans.degraded, "{algo:?}: answers over survivors must be flagged");
        assert_eq!(ans.shards_used, k - 1, "{algo:?}");
        assert_ne!(ans.leader, 0, "{algo:?}: the dead leader cannot coordinate");
        assert!(
            ans.neighbors.iter().all(|n| n.machine != 0),
            "{algo:?}: no candidates from the crashed shard"
        );
        let want = survivors.query_with(algo, &q, ell).expect("survivor reference");
        assert_eq!(
            ids_and_dists(&ans.neighbors),
            ids_and_dists(&want.neighbors),
            "{algo:?}: degraded answer must equal the survivors' fault-free answer"
        );
    }
}

/// The batched path recovers the same way: one crashed leader, one
/// re-election, every per-query answer flagged and correct.
#[test]
fn batched_queries_survive_a_leader_crash() {
    let (seed, k, ell) = (29u64, 5usize, 6usize);
    let qs = queries(seed, 4);
    let crashed =
        cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default().with_crash(0, 0));
    let batch = crashed.query_batch_with(Algorithm::Knn, &qs, ell).expect("batch recovery");
    assert!(batch.degraded);
    assert_eq!(batch.shards_used, k - 1);
    assert_ne!(batch.leader, 0);
    let mut survivors: KnnCluster =
        KnnCluster::builder().machines(k - 1).seed(seed).election(ElectionKind::Fixed).build();
    let shards = ScalarWorkload::small(512).generate(k, seed);
    survivors.load_shards(shards[1..].to_vec()).expect("shard count");
    let want = survivors.query_batch_with(Algorithm::Knn, &qs, ell).expect("survivor batch");
    for (got, want) in batch.answers.iter().zip(&want.answers) {
        assert!(got.degraded, "per-query answers carry the flag");
        assert_eq!(got.shards_used, k - 1);
        assert_eq!(ids_and_dists(&got.neighbors), ids_and_dists(&want.neighbors));
    }
}

/// A crashed *worker* under the Simple protocol is written off inside the
/// run — the leader observes the crash via `Ctx::crashed`, completes with
/// the surviving censuses, and no retry happens (the realized faults of
/// the answering run still list the dead machine).
#[test]
fn worker_crash_under_simple_is_salvaged_in_run() {
    let (seed, k, ell) = (31u64, 4usize, 6usize);
    let q = ScalarPoint(seed.wrapping_mul(127));
    let crashed =
        cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default().with_crash(2, 0));
    let ans = crashed.query_with(Algorithm::Simple, &q, ell).expect("salvage");
    assert!(ans.degraded);
    assert_eq!(ans.shards_used, k - 1);
    assert_eq!(ans.leader, 0, "the leader survived; no re-election");
    assert_eq!(ans.faults.crashed, vec![2], "the write-off happened inside the run");
    assert!(ans.neighbors.iter().all(|n| n.machine != 2));
}

/// A link whose loss outlives the retry budget is a **typed error**, not
/// a hang and not a panic: total loss with a two-shot budget surfaces
/// `EngineError::LinkDown` through the serving layer.
#[test]
fn exhausted_retries_surface_a_typed_link_down() {
    let (seed, k, ell) = (41u64, 3usize, 5usize);
    let q = ScalarPoint(seed.wrapping_mul(127));
    let lossy = cluster(
        k,
        seed,
        Engine::Sync,
        DeliveryMode::Exact,
        FaultPlan::default().with_loss(1000, 2).with_fault_seed(7),
    );
    match lossy.query_with(Algorithm::Knn, &q, ell) {
        Err(CoreError::Engine(EngineError::LinkDown { retries, .. })) => {
            assert_eq!(retries, 2, "the error reports the exhausted budget");
        }
        other => panic!("total loss must be a typed LinkDown, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Determinism under fire: the same seed and the same fault plan —
    /// survivable loss, a straggler, a mid-run worker crash — produce
    /// byte-identical answers, metrics, **and realized faults** (drop and
    /// retransmission counts included) on every engine and pool size.
    #[test]
    fn prop_faulty_runs_are_engine_invariant(
        seed in 0u64..500,
        loss in 0u16..150,
        fault_seed in 0u64..1000,
    ) {
        let (k, ell) = (4usize, 6usize);
        let qs = queries(seed, 3);
        let plan = FaultPlan::default()
            .with_loss(loss, 64)
            .with_straggler(1, 2)
            .with_fault_seed(fault_seed);
        let want = with_pool(1, || {
            let c = cluster(k, seed, Engine::Sync, DeliveryMode::Exact, plan.clone());
            c.query_batch_with(Algorithm::Knn, &qs, ell).expect("sync chaos run")
        });
        for engine in [Engine::Threaded, Engine::Event] {
            for pool in [2usize, 8] {
                let got = with_pool(pool, || {
                    let c = cluster(k, seed, engine, DeliveryMode::Exact, plan.clone());
                    c.query_batch_with(Algorithm::Knn, &qs, ell).expect("chaos run")
                });
                for (g, w) in got.answers.iter().zip(&want.answers) {
                    prop_assert_eq!(&g.neighbors, &w.neighbors, "{:?}/pool {}", engine, pool);
                }
                prop_assert_eq!(&got.metrics, &want.metrics, "{:?}/pool {}", engine, pool);
                prop_assert_eq!(&got.faults, &want.faults,
                    "realized faults must be engine-invariant: {:?}/pool {}", engine, pool);
                prop_assert_eq!(got.degraded, want.degraded);
                prop_assert_eq!(got.shards_used, want.shards_used);
            }
        }
    }

    /// Crash recovery is deterministic too: the same crash plan takes the
    /// same re-election path and yields the same degraded answers on
    /// every engine.
    #[test]
    fn prop_crash_recovery_is_engine_invariant(
        seed in 0u64..500,
        victim in 0usize..4,
    ) {
        let (k, ell) = (4usize, 6usize);
        let qs = queries(seed, 2);
        let plan = FaultPlan::default().with_crash(victim, 0);
        let want = with_pool(1, || {
            let c = cluster(k, seed, Engine::Sync, DeliveryMode::Exact, plan.clone());
            c.query_batch_with(Algorithm::Knn, &qs, ell).expect("sync crash run")
        });
        prop_assert!(want.degraded);
        prop_assert_eq!(want.shards_used, k - 1);
        for engine in [Engine::Threaded, Engine::Event] {
            let got = with_pool(8, || {
                let c = cluster(k, seed, engine, DeliveryMode::Exact, plan.clone());
                c.query_batch_with(Algorithm::Knn, &qs, ell).expect("crash run")
            });
            for (g, w) in got.answers.iter().zip(&want.answers) {
                prop_assert_eq!(&g.neighbors, &w.neighbors, "{:?}", engine);
            }
            prop_assert_eq!(&got.metrics, &want.metrics, "{:?}", engine);
            prop_assert_eq!(got.leader, want.leader, "same re-election path: {:?}", engine);
            prop_assert_eq!(got.degraded, want.degraded);
            prop_assert_eq!(got.shards_used, want.shards_used);
        }
    }
}

/// An empty shard is not a fault: the cluster loads it, the protocols
/// handle it (the BinSearch census writes it off as permanently quiet),
/// and answers come back undegraded.
#[test]
fn empty_shards_are_healthy_not_degraded() {
    let (seed, k, ell) = (53u64, 4usize, 5usize);
    let mut shards = ScalarWorkload::small(512).generate(k, seed);
    shards[2] = Dataset::new(Vec::new());
    let mut c: KnnCluster =
        KnnCluster::builder().machines(k).seed(seed).election(ElectionKind::Fixed).build();
    c.load_shards(shards).expect("shard count");
    for algo in Algorithm::ALL {
        let ans = c.query_with(algo, &ScalarPoint(1234), ell).expect("empty shard");
        assert!(!ans.degraded, "{algo:?}: empty is healthy");
        assert_eq!(ans.shards_used, k, "{algo:?}");
        assert_eq!(ans.neighbors.len(), ell, "{algo:?}: the other shards fill the answer");
    }
}

/// Crash-then-rejoin is **invisible to the answer** on every engine and
/// every pool size: a machine that goes dark mid-batch, restores from its
/// last protocol checkpoint, and replays the retained rounds produces a
/// batch byte-identical to the fault-free reference — same neighbors,
/// same aggregate metrics — with `degraded` cleared (the rejoined shard
/// served), no realized crash, and the recovery work reported on the
/// answer (`recovered`, `replayed_rounds`).
#[test]
fn rejoin_is_byte_identical_on_every_engine() {
    let (seed, k, ell) = (67u64, 4usize, 6usize);
    let qs = queries(seed, 4);
    let want = with_pool(1, || {
        let c = cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default());
        c.query_batch_with(Algorithm::Simple, &qs, ell).expect("fault-free reference")
    });
    assert!(!want.recovered);
    assert_eq!(want.replayed_rounds, 0);
    let plan = RecoveryPlan::default().with_rejoin(2, 2, 5);
    let mut replayed = Vec::new();
    for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
        for pool in [1usize, 8] {
            let got = with_pool(pool, || {
                let c = healing_cluster(k, seed, engine, plan.clone());
                c.query_batch_with(Algorithm::Simple, &qs, ell).expect("healing batch")
            });
            let label = format!("{engine:?}/pool {pool}");
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.neighbors, w.neighbors, "rejoin changed an answer: {label}");
            }
            assert_eq!(got.metrics, want.metrics, "rejoin changed the metrics: {label}");
            assert!(!got.degraded, "the rejoined shard serves; nothing is degraded: {label}");
            assert_eq!(got.shards_used, k, "{label}");
            assert!(
                got.faults.crashed.is_empty(),
                "a healed crash is not a realized fault: {label}"
            );
            assert!(got.recovered, "the recovery work must be reported: {label}");
            assert_eq!(got.attempts, 1, "rejoin heals in-run, without a retry: {label}");
            assert!(got.replayed_rounds >= 1, "{label}");
            replayed.push(got.replayed_rounds);
        }
    }
    assert!(
        replayed.windows(2).all(|w| w[0] == w[1]),
        "recovery metrics must be engine-invariant: {replayed:?}"
    );
}

/// The same crash **without** a rejoin plan degrades the answer; with the
/// plan, the identical crash round heals. This is the self-healing
/// contract in one contrast — and it holds on the single-query path too
/// (BinSearch exercises the other checkpointable protocol).
#[test]
fn rejoin_clears_the_degraded_flag_a_bare_crash_sets() {
    let (seed, k, ell) = (71u64, 4usize, 6usize);
    let q = ScalarPoint(seed.wrapping_mul(127));
    let clean = cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default());
    let want = clean.query_with(Algorithm::BinSearch, &q, ell).expect("fault-free reference");
    let bare =
        cluster(k, seed, Engine::Sync, DeliveryMode::Exact, FaultPlan::default().with_crash(2, 2));
    let degraded = bare.query_with(Algorithm::BinSearch, &q, ell).expect("survivor retry");
    assert!(degraded.degraded, "an unhealed crash degrades the answer");
    assert_eq!(degraded.shards_used, k - 1);
    assert!(degraded.recovered, "the survivor retry is recovery work");
    assert!(degraded.attempts > 1);
    let healing =
        healing_cluster(k, seed, Engine::Sync, RecoveryPlan::default().with_rejoin(2, 2, 5));
    let healed = healing.query_with(Algorithm::BinSearch, &q, ell).expect("healed query");
    assert!(!healed.degraded, "the rejoined shard clears the flag");
    assert_eq!(healed.shards_used, k);
    assert!(healed.recovered);
    assert_eq!(healed.attempts, 1);
    assert!(healed.replayed_rounds >= 1);
    assert_eq!(healed.neighbors, want.neighbors, "healed answer is byte-identical");
    // The leader-driven bisection genuinely waits out the offline window
    // (its next probe needs the dark worker's report), so the round count
    // may stretch — but the conversation itself is byte-identical: same
    // messages, same bits.
    assert_eq!(healed.metrics.messages, want.metrics.messages);
    assert_eq!(healed.metrics.bits, want.metrics.bits);
    assert!(healed.metrics.rounds >= want.metrics.rounds);
}

/// A representative self-healing run — crash, checkpoint-restore, replay,
/// rejoin — written to `results/recovery_metrics.json` for the CI chaos
/// leg's artifact upload.
#[test]
fn recovery_metrics_artifact() {
    let (seed, k, ell) = (73u64, 5usize, 6usize);
    let qs = queries(seed, 4);
    let batch = with_pool(4, || {
        let c = healing_cluster(
            k,
            seed,
            Engine::Event,
            RecoveryPlan::default().with_rejoin(1, 2, 6).with_checkpoint_interval(2),
        );
        c.query_batch_with(Algorithm::Simple, &qs, ell).expect("healing batch")
    });
    assert!(batch.recovered, "the artifact must witness actual recovery work");
    assert!(!batch.degraded);
    assert!(batch.replayed_rounds >= 1);
    std::fs::create_dir_all("results").expect("results dir");
    let json = serde_json::to_string_pretty(&batch).expect("serialize");
    std::fs::write("results/recovery_metrics.json", json).expect("write artifact");
}

/// A loaded cluster under a Byzantine adversary plan, optionally compounded
/// with fail-stop faults and a recovery plan.
fn byzantine_cluster(
    k: usize,
    seed: u64,
    engine: Engine,
    delivery: DeliveryMode,
    adversary: AdversaryPlan,
    faults: FaultPlan,
    recovery: RecoveryPlan,
) -> KnnCluster {
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(engine)
        .delivery(delivery)
        .election(ElectionKind::Fixed)
        .adversary(adversary)
        .faults(faults)
        .recovery(recovery)
        .build();
    cluster.load_shards(shards).expect("shard count");
    cluster
}

/// Byzantine detection, quarantine, and the certified answer are engine-
/// and pool-invariant: the same lie is fabricated, caught, and recovered
/// from identically on sync, threaded, and event (exact *and* relaxed
/// delivery), at every pool size — audits, violations, and quarantine
/// counts included.
#[test]
fn byzantine_recovery_is_engine_and_pool_invariant() {
    let (seed, k, ell) = (83u64, 4usize, 8usize);
    let qs = queries(seed, 4);
    let plan = AdversaryPlan::default().with_lie(1, 0);
    let want = with_pool(1, || {
        let c = byzantine_cluster(
            k,
            seed,
            Engine::Sync,
            DeliveryMode::Exact,
            plan.clone(),
            FaultPlan::default(),
            RecoveryPlan::default(),
        );
        c.query_batch_with(Algorithm::Knn, &qs, ell).expect("byzantine batch")
    });
    assert_eq!(want.audit.suspects_quarantined, 1, "the liar must be caught");
    assert!(want.audit.audits_run > 0);
    assert!(want.degraded, "the quarantined shard degrades the batch");
    for (engine, delivery) in [
        (Engine::Sync, DeliveryMode::Exact),
        (Engine::Threaded, DeliveryMode::Exact),
        (Engine::Event, DeliveryMode::Exact),
        (Engine::Event, DeliveryMode::Relaxed),
    ] {
        for pool in [1usize, 8] {
            let got = with_pool(pool, || {
                let c = byzantine_cluster(
                    k,
                    seed,
                    engine,
                    delivery,
                    plan.clone(),
                    FaultPlan::default(),
                    RecoveryPlan::default(),
                );
                c.query_batch_with(Algorithm::Knn, &qs, ell).expect("byzantine batch")
            });
            let label = format!("{engine:?}/{delivery:?}/pool {pool}");
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.neighbors, w.neighbors, "byzantine answers diverged: {label}");
                assert_eq!(g.attempts, w.attempts, "{label}");
            }
            assert_eq!(got.metrics, want.metrics, "{label}");
            assert_eq!(got.audit, want.audit, "audit metrics diverged: {label}");
            assert_eq!(got.degraded, want.degraded, "{label}");
            assert_eq!(got.shards_used, want.shards_used, "{label}");
        }
    }
}

/// Compound faults in one run: survivable link loss **and** a crash-then-
/// rejoin window together. The rejoin heals in-run, the loss retransmits,
/// and the whole thing stays byte-identical across engines and pool sizes.
#[test]
fn loss_plus_rejoin_compound_is_engine_and_pool_invariant() {
    let (seed, k, ell) = (89u64, 4usize, 6usize);
    let qs = queries(seed, 4);
    let faults = FaultPlan::default().with_loss(40, 16).with_fault_seed(13);
    let recovery = RecoveryPlan::default().with_rejoin(2, 2, 5);
    let want = with_pool(1, || {
        let c = byzantine_cluster(
            k,
            seed,
            Engine::Sync,
            DeliveryMode::Exact,
            AdversaryPlan::default(),
            faults.clone(),
            recovery.clone(),
        );
        c.query_batch_with(Algorithm::Simple, &qs, ell).expect("compound batch")
    });
    assert!(want.recovered, "the rejoin is recovery work");
    assert!(!want.degraded, "the healed shard serves");
    assert!(want.replayed_rounds >= 1);
    assert!(want.faults.dropped_messages > 0, "the loss process must actually bite");
    for engine in [Engine::Threaded, Engine::Event] {
        for pool in [1usize, 8] {
            let got = with_pool(pool, || {
                let c = byzantine_cluster(
                    k,
                    seed,
                    engine,
                    DeliveryMode::Exact,
                    AdversaryPlan::default(),
                    faults.clone(),
                    recovery.clone(),
                );
                c.query_batch_with(Algorithm::Simple, &qs, ell).expect("compound batch")
            });
            let label = format!("{engine:?}/pool {pool}");
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.neighbors, w.neighbors, "compound answers diverged: {label}");
            }
            assert_eq!(got.metrics, want.metrics, "{label}");
            assert_eq!(got.faults, want.faults, "realized faults diverged: {label}");
            assert_eq!(got.replayed_rounds, want.replayed_rounds, "{label}");
        }
    }
}

/// An adversary lying while another machine is inside its crash-rejoin
/// replay window: the rejoiner heals, the liar is caught and quarantined,
/// and the certified answer equals the honest survivors' — identically on
/// every engine.
#[test]
fn lie_during_a_replay_window_is_caught_and_invariant() {
    let (seed, k, ell) = (97u64, 4usize, 6usize);
    let qs = queries(seed, 3);
    let adversary = AdversaryPlan::default().with_lie(1, 0);
    let recovery = RecoveryPlan::default().with_rejoin(2, 2, 5);
    let want = with_pool(1, || {
        let c = byzantine_cluster(
            k,
            seed,
            Engine::Sync,
            DeliveryMode::Exact,
            adversary.clone(),
            FaultPlan::default(),
            recovery.clone(),
        );
        c.query_batch_with(Algorithm::Simple, &qs, ell).expect("lie-during-replay batch")
    });
    assert_eq!(want.audit.suspects_quarantined, 1, "the liar must be caught");
    // Honest reference: the survivors (everyone but the liar) with the
    // same rejoin window, shifted onto the 3-machine layout.
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut honest: KnnCluster =
        KnnCluster::builder().machines(k - 1).seed(seed).election(ElectionKind::Fixed).build();
    let survivors: Vec<Dataset<ScalarPoint>> =
        shards.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, d)| d.clone()).collect();
    honest.load_shards(survivors).expect("shard count");
    let reference = honest.query_batch_with(Algorithm::Simple, &qs, ell).expect("honest reference");
    for (g, w) in want.answers.iter().zip(&reference.answers) {
        assert_eq!(
            ids_and_dists(&g.neighbors),
            ids_and_dists(&w.neighbors),
            "the certified answer must equal the honest survivors'"
        );
    }
    for engine in [Engine::Threaded, Engine::Event] {
        let got = with_pool(8, || {
            let c = byzantine_cluster(
                k,
                seed,
                engine,
                DeliveryMode::Exact,
                adversary.clone(),
                FaultPlan::default(),
                recovery.clone(),
            );
            c.query_batch_with(Algorithm::Simple, &qs, ell).expect("lie-during-replay batch")
        });
        for (g, w) in got.answers.iter().zip(&want.answers) {
            assert_eq!(g.neighbors, w.neighbors, "{engine:?}");
        }
        assert_eq!(got.audit, want.audit, "{engine:?}");
    }
}

/// A Byzantine cluster whose shards were **mutated by live inserts** after
/// load: the semantic audit recomputes shard-local truth from the mutated
/// shards (through the same [`knn_core::ShardIndex`] the honest machines
/// answer from), so the liar is still caught and quarantined, and the
/// certified answer equals the honest survivors' — with the surviving
/// machines' inserts included — identically on every engine, both backends.
#[test]
fn audit_after_live_inserts_still_catches_the_liar() {
    let (seed, k, ell) = (101u64, 4usize, 8usize);
    let qs = queries(seed, 3);
    for backend in [IndexBackend::Exact, IndexBackend::nsw()] {
        let build = |engine: Engine, adversary: AdversaryPlan| {
            let shards = ScalarWorkload::small(512).generate(k, seed);
            let mut cluster: KnnCluster = KnnCluster::builder()
                .machines(k)
                .seed(seed)
                .engine(engine)
                .election(ElectionKind::Fixed)
                .adversary(adversary)
                .index_backend(backend)
                .build();
            cluster.load_shards(shards).expect("shard count");
            // Live inserts, routed by the seeded id hash: near-query values
            // that change every shard's local truth after load.
            let placed: Vec<(usize, Record<ScalarPoint>)> = (0..24u64)
                .map(|i| {
                    let point = ScalarPoint(qs[(i % 3) as usize].0.wrapping_add(i));
                    let (id, machine) = cluster.insert(point).expect("live insert");
                    (machine, Record { id, point, label: None })
                })
                .collect();
            (cluster, placed)
        };
        let plan = AdversaryPlan::default().with_lie(1, 0);
        let (byz, placed) = build(Engine::Sync, plan.clone());
        let want = byz.query_batch_with(Algorithm::Simple, &qs, ell).expect("byzantine batch");
        assert_eq!(
            want.audit.suspects_quarantined,
            1,
            "{}: the liar must be caught over mutated shards",
            backend.name()
        );
        assert!(want.audit.audits_run > 0);
        assert!(want.degraded);

        // Honest reference: the survivors (everyone but the liar), holding
        // the same loaded shards *and* the same surviving inserts.
        let shards = ScalarWorkload::small(512).generate(k, seed);
        let mut honest: KnnCluster = KnnCluster::builder()
            .machines(k - 1)
            .seed(seed)
            .election(ElectionKind::Fixed)
            .index_backend(backend)
            .build();
        let survivors: Vec<Dataset<ScalarPoint>> =
            shards.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, d)| d.clone()).collect();
        honest.load_shards(survivors).expect("shard count");
        for &(machine, ref record) in &placed {
            if machine != 1 {
                let shifted = if machine > 1 { machine - 1 } else { machine };
                honest.insert_record_into(shifted, record.clone()).expect("replay insert");
            }
        }
        let reference =
            honest.query_batch_with(Algorithm::Simple, &qs, ell).expect("honest reference");
        for (g, w) in want.answers.iter().zip(&reference.answers) {
            assert_eq!(
                ids_and_dists(&g.neighbors),
                ids_and_dists(&w.neighbors),
                "{}: certified answer must equal the honest survivors' (inserts included)",
                backend.name()
            );
        }
        for engine in [Engine::Threaded, Engine::Event] {
            let (byz, _) = build(engine, plan.clone());
            let got = byz.query_batch_with(Algorithm::Simple, &qs, ell).expect("byzantine batch");
            let label = format!("{}/{engine:?}", backend.name());
            for (g, w) in got.answers.iter().zip(&want.answers) {
                assert_eq!(g.neighbors, w.neighbors, "{label}");
            }
            assert_eq!(got.audit, want.audit, "{label}");
            assert_eq!(got.metrics, want.metrics, "{label}");
        }
    }
}

/// The dual soundness property: with the audit machinery armed but every
/// machine honest, answers dominated by **freshly inserted points** still
/// certify — nobody is quarantined. If an insert failed to update the
/// shard-local truth the audit recomputes, the honest machine claiming its
/// own inserted point would be indistinguishable from a liar.
#[test]
fn honest_claims_over_inserted_points_certify() {
    let (seed, k, ell) = (103u64, 4usize, 6usize);
    let probe = ScalarPoint(5_000_000);
    for backend in [IndexBackend::Exact, IndexBackend::nsw()] {
        // A zero-rate corrupt link arms the full defense stack (digests +
        // per-query semantic audit) without ever firing.
        let plan = AdversaryPlan::default().with_corrupt_link(0, 1, 0);
        let shards = ScalarWorkload::small(512).generate(k, seed);
        let mut cluster: KnnCluster = KnnCluster::builder()
            .machines(k)
            .seed(seed)
            .election(ElectionKind::Fixed)
            .adversary(plan)
            .index_backend(backend)
            .build();
        cluster.load_shards(shards).expect("shard count");
        // Inserts in a region the workload never reaches: they ARE the
        // answer to the probe query.
        let inserted: Vec<_> = (0..ell as u64)
            .map(|i| cluster.insert(ScalarPoint(probe.0 + i)).expect("insert").0)
            .collect();
        let batch = cluster.query_batch_with(Algorithm::Simple, &[probe], ell).expect("batch");
        assert!(batch.audit.audits_run > 0, "{}: the audit must actually run", backend.name());
        assert_eq!(
            batch.audit.suspects_quarantined,
            0,
            "{}: honest inserts certify",
            backend.name()
        );
        assert!(!batch.degraded, "{}", backend.name());
        let got_ids: Vec<_> = batch.answers[0].neighbors.iter().map(|n| n.id).collect();
        let mut want_ids = inserted.clone();
        want_ids.sort_unstable_by_key(|id| id.0);
        // All ell answers are inserted points (distances 0..ell-1 beat any
        // loaded value by construction), ascending by (distance, id).
        assert_eq!(got_ids.len(), ell, "{}", backend.name());
        for id in &got_ids {
            assert!(inserted.contains(id), "{}: answer {id:?} not an insert", backend.name());
        }
        assert_eq!(batch.answers[0].neighbors[0].dist.as_u64(), 0, "{}", backend.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// **No silently wrong answers, ever.** Under any single-adversary plan
    /// — a round-0 liar, an equivocator, or a corrupting link — a query
    /// either returns the exact answer over its certified topology (the
    /// full cluster when the lie was immaterial, the honest survivors when
    /// the adversary was quarantined) or fails with a typed error. It never
    /// returns an uncertified answer.
    #[test]
    fn prop_no_silently_wrong_answer_under_adversary(
        seed in 0u64..300,
        villain in 0usize..4,
        kind in 0u8..3,
        adv_seed in 0u64..1000,
    ) {
        let (k, ell) = (4usize, 6usize);
        let q = ScalarPoint(seed.wrapping_mul(127));
        let plan = match kind {
            0 => AdversaryPlan::default().with_lie(villain, 0),
            1 => AdversaryPlan::default().with_equivocate(villain),
            _ => AdversaryPlan::default().with_corrupt_link(villain, (villain + 1) % k, 400),
        }
        .with_adversary_seed(adv_seed);
        let c = byzantine_cluster(
            k,
            seed,
            Engine::Sync,
            DeliveryMode::Exact,
            plan,
            FaultPlan::default(),
            RecoveryPlan::default(),
        );
        match c.query_with(Algorithm::Knn, &q, ell) {
            Ok(ans) => {
                // The answer claims a topology; it must be exact over it.
                let shards = ScalarWorkload::small(512).generate(k, seed);
                let survivors: Vec<Dataset<ScalarPoint>> = if ans.audit.suspects_quarantined > 0 {
                    prop_assert!(ans.degraded);
                    prop_assert!(ans.neighbors.iter().all(|n| n.machine != villain));
                    shards.iter().enumerate()
                        .filter(|&(i, _)| i != villain)
                        .map(|(_, d)| d.clone())
                        .collect()
                } else {
                    shards.clone()
                };
                let mut honest: KnnCluster = KnnCluster::builder()
                    .machines(survivors.len())
                    .seed(seed)
                    .election(ElectionKind::Fixed)
                    .build();
                honest.load_shards(survivors).expect("shard count");
                let want = honest.query_with(Algorithm::Knn, &q, ell).expect("honest reference");
                prop_assert_eq!(
                    ids_and_dists(&ans.neighbors),
                    ids_and_dists(&want.neighbors),
                    "an uncertified answer escaped"
                );
            }
            // Every failure is typed — quarantine exhaustion, retry budget,
            // or a corruption the engines refused to deliver.
            Err(CoreError::AuditFailed { .. })
            | Err(CoreError::DeadlineExceeded { .. })
            | Err(CoreError::Engine(EngineError::IntegrityViolation { .. }))
            | Err(CoreError::Engine(EngineError::LinkDown { .. })) => {}
            Err(other) => prop_assert!(false, "untyped failure: {:?}", other),
        }
    }
}

/// A representative Byzantine run — a lying machine caught by the audit,
/// quarantined, and recovered from — written to
/// `results/audit_metrics.json` for the CI chaos leg's artifact upload.
#[test]
fn audit_metrics_artifact() {
    let (seed, k, ell) = (101u64, 5usize, 6usize);
    let qs = queries(seed, 4);
    let batch = with_pool(4, || {
        let c = byzantine_cluster(
            k,
            seed,
            Engine::Event,
            DeliveryMode::Relaxed,
            AdversaryPlan::default().with_lie(1, 0),
            FaultPlan::default(),
            RecoveryPlan::default(),
        );
        c.query_batch_with(Algorithm::Knn, &qs, ell).expect("byzantine batch")
    });
    assert_eq!(batch.audit.suspects_quarantined, 1, "the artifact must witness a quarantine");
    assert!(batch.audit.audits_run > 0);
    assert!(batch.audit.digests_verified > 0);
    std::fs::create_dir_all("results").expect("results dir");
    let json = serde_json::to_string_pretty(&batch).expect("serialize");
    std::fs::write("results/audit_metrics.json", json).expect("write artifact");
}

/// A representative chaos run — survivable loss plus a straggler plus a
/// crashed worker, relaxed delivery on the event engine — written to
/// `results/chaos_metrics.json` for the CI chaos leg's artifact upload.
#[test]
fn chaos_metrics_artifact() {
    let (seed, k, ell) = (61u64, 5usize, 6usize);
    let qs = queries(seed, 4);
    let plan = FaultPlan::default()
        .with_loss(50, 16)
        .with_straggler(1, 4)
        .with_crash(0, 0)
        .with_fault_seed(11);
    let batch = with_pool(4, || {
        let c = cluster(k, seed, Engine::Event, DeliveryMode::Relaxed, plan);
        c.query_batch_with(Algorithm::Knn, &qs, ell).expect("chaos batch")
    });
    assert!(batch.degraded, "the crashed shard degrades the batch");
    assert_eq!(batch.shards_used, k - 1);
    std::fs::create_dir_all("results").expect("results dir");
    let json = serde_json::to_string_pretty(&batch).expect("serialize");
    std::fs::write("results/chaos_metrics.json", json).expect("write artifact");
}
