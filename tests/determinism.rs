//! Reproducibility: a run is a pure function of (data, seed, config).

use knn_repro::prelude::*;

fn cluster_with_seed(seed: u64, engine: Engine) -> KnnCluster {
    let shards = ScalarWorkload { per_machine: 3000, lo: 0, hi: 1 << 28 }.generate(6, 1234);
    let mut cluster: KnnCluster =
        KnnCluster::builder().machines(6).seed(seed).engine(engine).build();
    cluster.load_shards(shards).unwrap();
    cluster
}

#[test]
fn same_seed_same_everything() {
    let q = ScalarPoint(99_999_999);
    let a = cluster_with_seed(42, Engine::Sync).query(&q, 40).unwrap();
    let b = cluster_with_seed(42, Engine::Sync).query(&q, 40).unwrap();
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn different_seed_same_answer_different_trace() {
    let q = ScalarPoint(99_999_999);
    let a = cluster_with_seed(42, Engine::Sync).query(&q, 40).unwrap();
    let b = cluster_with_seed(43, Engine::Sync).query(&q, 40).unwrap();
    // The answer is the answer...
    assert_eq!(a.neighbors, b.neighbors);
    // ...but the random pivots differ, so the execution trace should too
    // (equal traces for different seeds would mean the RNG is not wired).
    assert!(
        a.metrics.rounds != b.metrics.rounds || a.metrics.messages != b.metrics.messages,
        "seeds 42 and 43 produced identical traces"
    );
}

#[test]
fn threaded_engine_is_deterministic_despite_scheduling() {
    let q = ScalarPoint(5);
    let runs: Vec<_> =
        (0..3).map(|_| cluster_with_seed(7, Engine::Threaded).query(&q, 25).unwrap()).collect();
    for pair in runs.windows(2) {
        assert_eq!(pair[0].neighbors, pair[1].neighbors);
        assert_eq!(pair[0].metrics.rounds, pair[1].metrics.rounds);
        assert_eq!(pair[0].metrics.messages, pair[1].metrics.messages);
        assert_eq!(pair[0].metrics.bits, pair[1].metrics.bits);
    }
}

#[test]
fn repeated_queries_on_one_cluster_are_stable() {
    let cluster = cluster_with_seed(11, Engine::Sync);
    let q = ScalarPoint(1 << 27);
    let a = cluster.query(&q, 16).unwrap();
    let b = cluster.query(&q, 16).unwrap();
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.metrics, b.metrics);
}
