//! End-to-end integration: workloads → partitions → distributed protocols
//! → answers, validated against the sequential brute-force oracle, on both
//! engines and all algorithms.

use knn_repro::points::brute_force_knn;
use knn_repro::prelude::*;

fn oracle_ids(shards: &[Dataset<ScalarPoint>], q: &ScalarPoint, ell: usize) -> Vec<PointId> {
    let all: Vec<Record<ScalarPoint>> = shards.iter().flat_map(|d| d.records.clone()).collect();
    brute_force_knn(&all, q, ell, Metric::Euclidean).into_iter().map(|(k, _)| k.id).collect()
}

#[test]
fn every_algorithm_on_every_engine_matches_brute_force() {
    let k = 6;
    let shards = ScalarWorkload { per_machine: 2000, lo: 0, hi: 1 << 20 }.generate(k, 31);
    let q = ScalarPoint(777_777);
    let ell = 50;
    let want = oracle_ids(&shards, &q, ell);

    for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
        let mut cluster: KnnCluster =
            KnnCluster::builder().machines(k).seed(9).engine(engine).build();
        cluster.load_shards(shards.clone()).unwrap();
        for algo in Algorithm::ALL {
            let ans = cluster.query_with(algo, &q, ell).unwrap();
            let got: Vec<PointId> = ans.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(got, want, "{algo:?} on {engine:?}");
            assert_eq!(ans.neighbors.len(), ell);
        }
    }
}

#[test]
fn sync_and_threaded_engines_agree_exactly() {
    let k = 5;
    let shards = ScalarWorkload { per_machine: 1500, lo: 0, hi: 1 << 24 }.generate(k, 8);
    let q = ScalarPoint(12345);

    for algo in Algorithm::ALL {
        let run = |engine| {
            let mut cluster: KnnCluster =
                KnnCluster::builder().machines(k).seed(4).engine(engine).build();
            cluster.load_shards(shards.clone()).unwrap();
            cluster.query_with(algo, &q, 31).unwrap()
        };
        let a = run(Engine::Sync);
        let b = run(Engine::Threaded);
        assert_eq!(a.neighbors, b.neighbors, "{algo:?}");
        assert_eq!(a.metrics.rounds, b.metrics.rounds, "{algo:?}");
        assert_eq!(a.metrics.messages, b.metrics.messages, "{algo:?}");
        assert_eq!(a.metrics.bits, b.metrics.bits, "{algo:?}");
    }
}

#[test]
fn vector_points_and_every_metric() {
    let data = GaussianMixture { dims: 3, clusters: 4, spread: 2.0, range: 10.0 }.generate(600, 5);
    let q = VecPoint::new(vec![0.5, -1.0, 2.0]);
    for metric in [
        Metric::Euclidean,
        Metric::SquaredEuclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Minkowski(3.0),
    ] {
        let mut ids = IdAssigner::new(1);
        let dataset = Dataset::from_labeled(data.clone(), &mut ids);
        let all = dataset.records.clone();
        let want: Vec<PointId> =
            brute_force_knn(&all, &q, 9, metric).into_iter().map(|(k, _)| k.id).collect();

        let mut cluster: KnnCluster<VecPoint> =
            KnnCluster::builder().machines(7).seed(2).metric(metric).build();
        cluster.load(dataset, PartitionStrategy::Shuffled);
        let got: Vec<PointId> =
            cluster.query(&q, 9).unwrap().neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, want, "{metric:?}");
    }
}

#[test]
fn duplicate_points_resolved_by_ids() {
    // 100 copies of the same value: any ℓ of them is a valid answer set,
    // but the id tie-breaking must make it *one deterministic* set.
    let mut ids = IdAssigner::new(6);
    let data = Dataset::from_points(vec![ScalarPoint(42); 100], &mut ids);
    let mut all_ids: Vec<PointId> = data.records.iter().map(|r| r.id).collect();
    let mut cluster: KnnCluster = KnnCluster::builder().machines(4).seed(3).build();
    cluster.load(data, PartitionStrategy::RoundRobin);

    let a = cluster.query(&ScalarPoint(40), 10).unwrap();
    let b = cluster.query_with(Algorithm::Simple, &ScalarPoint(40), 10).unwrap();
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.neighbors.len(), 10);
    // All distances are equal, so DistKey order degenerates to id order:
    // the answer must be exactly the 10 smallest ids, ascending.
    all_ids.sort_unstable();
    let got: Vec<PointId> = a.neighbors.iter().map(|n| n.id).collect();
    assert_eq!(got, all_ids[..10], "smallest ids win ties, in ascending order");
}

#[test]
fn bandwidth_affects_rounds_not_answers() {
    let k = 4;
    let shards = ScalarWorkload { per_machine: 1000, lo: 0, hi: 1 << 16 }.generate(k, 77);
    let q = ScalarPoint(4000);
    let run = |bits: Option<u64>| {
        let builder = KnnCluster::builder().machines(k).seed(5);
        let builder = match bits {
            Some(b) => builder.bandwidth_bits(b),
            None => builder.unlimited_bandwidth(),
        };
        let mut cluster: KnnCluster = builder.build();
        cluster.load_shards(shards.clone()).unwrap();
        cluster.query_with(Algorithm::Simple, &q, 64).unwrap()
    };
    let narrow = run(Some(256));
    let wide = run(Some(4096));
    let unlimited = run(None);
    assert_eq!(narrow.neighbors, wide.neighbors);
    assert_eq!(narrow.neighbors, unlimited.neighbors);
    assert!(narrow.metrics.rounds > wide.metrics.rounds);
    assert!(wide.metrics.rounds >= unlimited.metrics.rounds);
}

#[test]
fn ell_edge_cases_through_the_full_stack() {
    let shards = ScalarWorkload { per_machine: 50, lo: 0, hi: 1000 }.generate(3, 1);
    let mut cluster: KnnCluster = KnnCluster::builder().machines(3).seed(0).build();
    cluster.load_shards(shards).unwrap();
    let q = ScalarPoint(500);

    for algo in Algorithm::ALL {
        assert_eq!(cluster.query_with(algo, &q, 0).unwrap().neighbors.len(), 0, "{algo:?}");
        assert_eq!(cluster.query_with(algo, &q, 1).unwrap().neighbors.len(), 1, "{algo:?}");
        assert_eq!(cluster.query_with(algo, &q, 150).unwrap().neighbors.len(), 150, "{algo:?}");
        assert_eq!(cluster.query_with(algo, &q, 1000).unwrap().neighbors.len(), 150, "{algo:?}");
    }
}
