//! Engine conformance: relaxed delivery is output-equivalent to lockstep.
//!
//! `DeliveryMode::Relaxed` intentionally breaks the event engine's lockstep
//! *execution* equivalence — machines pipeline rounds past quiet peers —
//! so its correctness contract is **metamorphic**: every observable output
//! of a run (answers, aggregate and per-tag message/bit totals, round
//! accounting, late-delivery counts) must equal `run_sync`'s, while only
//! wall-clock overlap (reported via `SkewMetrics`) may differ. This suite
//! pins that contract over the full serving matrix — all four algorithms ×
//! all three elections × pool sizes {1, 2, 8} — plus a seeded case proving
//! the pipelining is real (recorded max skew > 1), not a no-op mode.

use std::time::Duration;

use kmachine::engine::{run_event, run_sync};
use kmachine::{Ctx, DeliveryMode, Engine, FaultPlan, NetConfig, Protocol, RunMetrics, Step};
use knn_core::cluster::{KnnCluster, Neighbor};
use knn_core::runner::{Algorithm, ElectionKind};
use knn_points::{Dataset, ScalarPoint};
use knn_workloads::ScalarWorkload;
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

const POOLS: [usize; 3] = [1, 2, 8];
const ELECTIONS: [ElectionKind; 3] = [ElectionKind::Fixed, ElectionKind::Star, ElectionKind::Flood];

fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

/// Everything observable about one batched serving run plus one single
/// query: per-query answers, per-query attributed costs, aggregate
/// metrics, and the single-query answer/metrics.
#[allow(clippy::type_complexity)]
fn serve(
    engine: Engine,
    delivery: DeliveryMode,
    election: ElectionKind,
    algo: Algorithm,
    seed: u64,
    k: usize,
    ell: usize,
) -> (Vec<Vec<Neighbor>>, Vec<(u64, u64, u64)>, RunMetrics, Vec<Neighbor>, RunMetrics) {
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(engine)
        .delivery(delivery)
        .election(election)
        .build();
    cluster.load_shards(shards).expect("shard count");
    let queries: Vec<ScalarPoint> =
        (0..6u64).map(|i| ScalarPoint(seed.wrapping_mul(127).wrapping_add(i * 811))).collect();
    let batch = cluster.query_batch_with(algo, &queries, ell).expect("batch");
    let single = cluster.query_with(algo, &queries[0], ell).expect("single");
    (
        batch.answers.iter().map(|a| a.neighbors.clone()).collect(),
        batch
            .answers
            .iter()
            .map(|a| (a.metrics.messages, a.metrics.bits, a.metrics.rounds))
            .collect(),
        batch.metrics,
        single.neighbors,
        single.metrics,
    )
}

/// The pinned conformance matrix: relaxed event runs reproduce the
/// lockstep outputs and the complete accounting — per-tag message/bit
/// totals included — for every algorithm, election, and pool size.
#[test]
fn relaxed_delivery_matches_sync_across_algorithms_elections_and_pools() {
    let (seed, k, ell) = (42, 4, 8);
    for algo in Algorithm::ALL {
        for election in ELECTIONS {
            let want = with_pool(1, || {
                serve(Engine::Sync, DeliveryMode::Exact, election, algo, seed, k, ell)
            });
            for pool in POOLS {
                let got = with_pool(pool, || {
                    serve(Engine::Event, DeliveryMode::Relaxed, election, algo, seed, k, ell)
                });
                let label = format!("{algo:?}/{election:?}/pool {pool}");
                assert_eq!(got.0, want.0, "batch answers diverged: {label}");
                assert_eq!(got.1, want.1, "per-query msg/bit/round attribution: {label}");
                assert_eq!(got.2, want.2, "aggregate batch metrics (incl. per_tag): {label}");
                assert_eq!(got.3, want.3, "single-query answer: {label}");
                assert_eq!(got.4, want.4, "single-query metrics: {label}");
                // Per-tag totals must partition the aggregate in relaxed
                // mode too, not merely match field-by-field.
                let tag_msgs: u64 = got.2.per_tag.iter().map(|t| t.messages).sum();
                let tag_bits: u64 = got.2.per_tag.iter().map(|t| t.bits).sum();
                assert_eq!(tag_msgs, got.2.messages, "per-tag messages partition: {label}");
                assert_eq!(tag_bits, got.2.bits, "per-tag bits partition: {label}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Metamorphic sweep: random workload shapes through the serving path,
    /// relaxed event vs lockstep, byte-equal observables.
    #[test]
    fn prop_relaxed_serving_is_output_equivalent(
        seed in 0u64..1000,
        k in 2usize..6,
        ell in 1usize..20,
    ) {
        for algo in [Algorithm::Knn, Algorithm::Simple] {
            let want = with_pool(1, || {
                serve(Engine::Sync, DeliveryMode::Exact, ElectionKind::Fixed, algo, seed, k, ell)
            });
            for pool in [2usize, 8] {
                let got = with_pool(pool, || {
                    serve(
                        Engine::Event,
                        DeliveryMode::Relaxed,
                        ElectionKind::Fixed,
                        algo,
                        seed,
                        k,
                        ell,
                    )
                });
                prop_assert_eq!(&got.0, &want.0, "answers: {:?} pool {}", algo, pool);
                prop_assert_eq!(&got.2, &want.2, "metrics: {:?} pool {}", algo, pool);
            }
        }
    }
}

/// Machine 0 pumps one word per round; machine 1 declares a permanent
/// silent horizon, only accumulates, and is artificially slow. The pump
/// must overtake it by more than one round — the overlap exact delivery
/// can never produce — while the outcome stays byte-identical.
enum PumpOrQuiet {
    Pump { rounds: u64 },
    Quiet { expect: u64, got: u64, sleep: Duration },
}

impl Protocol for PumpOrQuiet {
    type Msg = u64;
    type Output = u64;

    fn quiet_until(&self) -> Option<u64> {
        match self {
            PumpOrQuiet::Pump { .. } => None,
            PumpOrQuiet::Quiet { .. } => Some(u64::MAX),
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
        match self {
            PumpOrQuiet::Pump { rounds } => {
                if ctx.round() < *rounds {
                    ctx.send(1, ctx.round());
                    Step::Continue
                } else {
                    Step::Done(ctx.round())
                }
            }
            PumpOrQuiet::Quiet { expect, got, sleep } => {
                if !sleep.is_zero() {
                    std::thread::sleep(*sleep);
                }
                *got += ctx.inbox().len() as u64;
                if got == expect {
                    Step::Done(*got)
                } else {
                    Step::Continue
                }
            }
        }
    }
}

fn pump_protocols(rounds: u64, sleep: Duration) -> Vec<PumpOrQuiet> {
    vec![PumpOrQuiet::Pump { rounds }, PumpOrQuiet::Quiet { expect: rounds, got: 0, sleep }]
}

/// The seeded pipelining proof: recorded max skew **exceeds one round**,
/// which the exact-delivery readiness rule makes impossible — so the
/// conformance equalities above are constraining a genuinely different
/// execution, not a renamed exact mode.
#[test]
fn seeded_case_records_multi_round_skew() {
    let rounds = 24;
    let cfg = NetConfig::new(2)
        .with_seed(7)
        .with_event_workers(2)
        .with_event_window(4)
        .with_delivery(DeliveryMode::Relaxed);
    let want = run_sync(&cfg, pump_protocols(rounds, Duration::ZERO)).expect("sync");
    let got = run_event(&cfg, pump_protocols(rounds, Duration::from_micros(500))).expect("relaxed");
    assert_eq!(want.outputs, got.outputs);
    assert_eq!(want.metrics, got.metrics);
    assert!(
        got.skew.max_skew > 1,
        "pipelining must be real: recorded max skew {} (exact delivery caps at 1)",
        got.skew.max_skew
    );
    assert!(got.skew.max_skew <= 4, "and bounded by the window: {}", got.skew.max_skew);
    assert!(got.skew.promised_rounds > 0);
    assert!(!want.skew.tracked(), "the lockstep reference reports no skew");
    println!(
        "seeded relaxed run: max skew {} (window 4), {} promised rounds, {} promises",
        got.skew.max_skew, got.skew.promised_rounds, got.skew.promises_published
    );
}

/// The serving layer surfaces the skew evidence: a relaxed batch on a
/// multi-worker pool reports tracked `SkewMetrics` on the `BatchAnswer`,
/// and an exact batch reports none.
#[test]
fn batch_answer_surfaces_skew_evidence() {
    let k = 4;
    let shards = ScalarWorkload::small(512).generate(k, 11);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(11)
        .engine(Engine::Event)
        .delivery(DeliveryMode::Relaxed)
        .build();
    cluster.load_shards(shards).expect("shard count");
    let queries: Vec<ScalarPoint> = (0..4u64).map(|i| ScalarPoint(i * 1000)).collect();
    let relaxed = with_pool(4, || cluster.query_batch(&queries, 6).expect("relaxed batch"));
    // A KNN_ENGINE override to a lockstep engine would suppress tracking;
    // only the event engine (requested here, or forced) records skew.
    let engine_forced_off = std::env::var(kmachine::ENGINE_ENV)
        .is_ok_and(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "sync" | "threaded"));
    if !engine_forced_off {
        assert!(relaxed.skew.tracked(), "relaxed multi-worker batches must report skew");
        assert_eq!(relaxed.skew.max_skew_per_machine.len(), k);
    }
    cluster.set_delivery(DeliveryMode::Exact);
    let exact = with_pool(4, || cluster.query_batch(&queries, 6).expect("exact batch"));
    // A KNN_DELIVERY override re-relaxes the "exact" run, so only assert
    // the absence of skew when the environment isn't forcing the mode.
    let delivery_forced = std::env::var(kmachine::DELIVERY_ENV).is_ok_and(|v| !v.trim().is_empty());
    if !delivery_forced {
        assert!(!exact.skew.tracked(), "exact batches report none");
    }
    assert_eq!(relaxed.metrics, exact.metrics, "the bill is identical either way");
}

/// True when neither the engine nor the delivery environment override is
/// set — the Auto downgrade policy under test only runs in a clean
/// environment (any forced engine or mode rewrites the policy itself).
fn env_clean() -> bool {
    std::env::var(kmachine::ENGINE_ENV).map_or(true, |v| v.trim().is_empty())
        && std::env::var(kmachine::DELIVERY_ENV).map_or(true, |v| v.trim().is_empty())
}

/// Regression for the silent relaxed→exact downgrade: `Engine::Auto` used
/// to discard a requested `DeliveryMode::Relaxed` for *every* protocol,
/// because none declared quiet phases (`QUIET_AWARE`). The serving
/// algorithms now opt in, so an Auto cluster asked for relaxed delivery
/// must actually pipeline — tracked `SkewMetrics` on the batch — while
/// still reproducing the lockstep answers and accounting byte-for-byte.
/// `SaukasSong` deliberately stays opted out (its phases are never quiet
/// long enough to pay for promise bookkeeping), and the downgrade must
/// keep applying there.
#[test]
fn auto_engine_keeps_relaxed_delivery_for_quiet_aware_algorithms() {
    let (seed, k, ell) = (23, 4, 8);
    for algo in Algorithm::ALL {
        let want = with_pool(1, || {
            serve(Engine::Sync, DeliveryMode::Exact, ElectionKind::Fixed, algo, seed, k, ell)
        });
        // k × default per-link budget meets Auto's work threshold, and the
        // 8-thread pool clears its parallelism bar, so Auto resolves to the
        // event engine here — the only engine where the downgrade matters.
        let (got, skew) = with_pool(8, || {
            let shards = ScalarWorkload::small(512).generate(k, seed);
            let mut cluster: KnnCluster = KnnCluster::builder()
                .machines(k)
                .seed(seed)
                .engine(Engine::Auto)
                .delivery(DeliveryMode::Relaxed)
                .election(ElectionKind::Fixed)
                .build();
            cluster.load_shards(shards).expect("shard count");
            let queries: Vec<ScalarPoint> = (0..6u64)
                .map(|i| ScalarPoint(seed.wrapping_mul(127).wrapping_add(i * 811)))
                .collect();
            let batch = cluster.query_batch_with(algo, &queries, ell).expect("batch");
            let answers: Vec<Vec<Neighbor>> =
                batch.answers.iter().map(|a| a.neighbors.clone()).collect();
            ((answers, batch.metrics), batch.skew)
        });
        assert_eq!(got.0, want.0, "auto/relaxed answers diverged: {algo:?}");
        assert_eq!(got.1, want.2, "auto/relaxed aggregate metrics: {algo:?}");
        if env_clean() {
            let quiet_aware = !matches!(algo, Algorithm::SaukasSong);
            assert_eq!(
                skew.tracked(),
                quiet_aware,
                "{algo:?}: Auto + Relaxed must {} (QUIET_AWARE = {quiet_aware})",
                if quiet_aware { "pipeline, not silently downgrade to exact" } else { "downgrade" },
            );
        }
    }
}

/// Fault-plan stragglers through a real algorithm: `BinSearch` with an
/// empty shard on the slow machine. The empty worker reports its census
/// once and then goes quiet forever, so under relaxed delivery the leader
/// and the working shards pipeline multiple rounds past it — recorded max
/// skew **exceeds one round** for a non-trivial serving algorithm, while
/// every answer and every metric stays byte-identical to the fault-free
/// lockstep run (stragglers are pure wall-clock, never observable state).
#[test]
fn binsearch_straggler_records_multi_round_skew() {
    let (seed, k, ell) = (5u64, 4usize, 6usize);
    let mut shards = ScalarWorkload::small(512).generate(k, seed);
    shards[3] = Dataset::new(Vec::new());
    let queries: Vec<ScalarPoint> =
        (0..6u64).map(|i| ScalarPoint(seed.wrapping_mul(127).wrapping_add(i * 811))).collect();

    let mut baseline: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(Engine::Sync)
        .election(ElectionKind::Fixed)
        .build();
    baseline.load_shards(shards.clone()).expect("shard count");
    let want = baseline.query_batch_with(Algorithm::BinSearch, &queries, ell).expect("baseline");

    let mut straggling: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .engine(Engine::Event)
        .delivery(DeliveryMode::Relaxed)
        .election(ElectionKind::Fixed)
        .faults(FaultPlan::default().with_straggler(3, 16))
        .build();
    straggling.load_shards(shards).expect("shard count");
    let got =
        with_pool(4, || straggling.query_batch_with(Algorithm::BinSearch, &queries, ell)).unwrap();

    let want_answers: Vec<&Vec<Neighbor>> = want.answers.iter().map(|a| &a.neighbors).collect();
    let got_answers: Vec<&Vec<Neighbor>> = got.answers.iter().map(|a| &a.neighbors).collect();
    assert_eq!(got_answers, want_answers, "straggler runs must be byte-identical");
    assert_eq!(got.metrics, want.metrics, "stragglers never change the bill");
    assert!(!got.degraded, "a slow machine is not a failed machine");
    assert_eq!(got.shards_used, k);
    assert!(!got.faults.any(), "stragglers are wall-clock only, not realized faults");
    let engine_forced_off = std::env::var(kmachine::ENGINE_ENV)
        .is_ok_and(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "sync" | "threaded"));
    let delivery_forced_exact =
        std::env::var(kmachine::DELIVERY_ENV).is_ok_and(|v| v.trim().eq_ignore_ascii_case("exact"));
    if !engine_forced_off && !delivery_forced_exact {
        assert!(
            got.skew.max_skew > 1,
            "the working shards must pipeline past the straggler: max skew {}",
            got.skew.max_skew
        );
        println!(
            "binsearch straggler run: max skew {} (window 4), {} promised rounds",
            got.skew.max_skew, got.skew.promised_rounds
        );
    }
}
