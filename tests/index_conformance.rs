//! Index conformance suite: every claim the shard indices make, checked
//! against exact oracles.
//!
//! Two oracles pin the NSW graph backend down:
//!
//! * the **brute-force `(distance, id)` scan** ([`knn_core::local::brute_top`])
//!   at the index level — recall at the default `ef`, *exact parity* once
//!   `ef` covers the shard (the knob saturates at exact by construction),
//!   genuineness of every claim, and deterministic tie-breaks;
//! * the **exact protocols** at the cluster level — the sequential
//!   [`KnnCluster::query`] path never uses an index (it scans every shard
//!   inside the protocol run), so it is the end-to-end reference the
//!   NSW-backed batched path is measured against, including after live
//!   [`KnnCluster::insert`]s.
//!
//! The insert-as-query equivalence tests pin the other tentpole property:
//! bulk load and empty-then-insert produce byte-identical serving behavior,
//! on every engine at every pool size.

use kmachine::Engine;
use knn_core::cluster::KnnCluster;
use knn_core::local::{brute_top, dist_keys, recall};
use knn_core::runner::Algorithm;
use knn_core::{IndexBackend, NswIndex, NswParams, ShardIndex};
use knn_points::{BitsPoint, Dataset, DistKey, IdAssigner, Metric, Record, ScalarPoint, VecPoint};
use knn_workloads::vector::uniform_cube;
use knn_workloads::{GaussianMixture, PartitionStrategy};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

/// The seeded vector workload of the acceptance criterion: a labeled
/// Gaussian mixture, round-robin sharded so every machine sees every class.
fn vector_shards(k: usize, per_shard: usize, dims: usize, seed: u64) -> Vec<Dataset<VecPoint>> {
    let mixture = GaussianMixture { dims, clusters: 10, spread: 1.5, range: 20.0 };
    let mut ids = IdAssigner::new(seed);
    let data = Dataset::from_labeled(mixture.generate(k * per_shard, seed), &mut ids);
    PartitionStrategy::RoundRobin
        .split(data.records, k, seed)
        .into_iter()
        .map(Dataset::new)
        .collect()
}

/// Queries from the *same* mixture distribution as [`vector_shards`] (same
/// centers, fresh noise) — near-neighbor-rich, the regime recall matters in.
fn vector_queries(n: usize, dims: usize, seed: u64) -> Vec<VecPoint> {
    let mixture = GaussianMixture { dims, clusters: 10, spread: 1.5, range: 20.0 };
    mixture.generate_with(n, seed, seed ^ 0xABCD).into_iter().map(|(p, _)| p).collect()
}

fn vec_cluster(
    k: usize,
    seed: u64,
    backend: IndexBackend,
    engine: Engine,
    shards: Vec<Dataset<VecPoint>>,
) -> KnnCluster<VecPoint> {
    let mut cluster: KnnCluster<VecPoint> =
        KnnCluster::builder().machines(k).seed(seed).engine(engine).index_backend(backend).build();
    cluster.load_shards(shards).expect("shard count");
    cluster
}

fn answer_keys(answer: &knn_core::cluster::KnnAnswer) -> Vec<DistKey> {
    answer.neighbors.iter().map(|n| DistKey::new(n.dist, n.id)).collect()
}

/// **Acceptance criterion.** On the seeded vector workload, the NSW-backed
/// batched path reaches mean recall ≥ 0.95 at the default `ef` against the
/// exact-protocol oracle — the sequential query path of the *same* cluster,
/// which scans every shard inside the protocol run and never touches the
/// graph.
#[test]
fn nsw_recall_beats_095_at_default_ef_on_the_seeded_vector_workload() {
    let (k, per_shard, dims, ell, seed) = (4usize, 1024usize, 8usize, 10usize, 42u64);
    let shards = vector_shards(k, per_shard, dims, seed);
    let cluster = vec_cluster(k, seed, IndexBackend::nsw(), Engine::Sync, shards);
    let queries = vector_queries(32, dims, seed);
    let batch = cluster.query_batch(&queries, ell).expect("nsw batch");
    let mut total = 0.0;
    for (q, got) in queries.iter().zip(&batch.answers) {
        let oracle = cluster.query(q, ell).expect("exact oracle");
        let r = recall(&answer_keys(got), &answer_keys(&oracle));
        assert!(r >= 0.5, "catastrophic recall {r} on one query");
        total += r;
    }
    let mean = total / queries.len() as f64;
    assert!(
        mean >= 0.95,
        "mean recall {mean} < 0.95 at default ef (params {:?})",
        NswParams::default()
    );
}

/// With the default `ef` saturating every shard (per-shard n ≤ ef), the
/// NSW-backed cluster is exact end-to-end: byte-identical answers *and*
/// byte-identical protocol costs to the exact-backend cluster, for every
/// algorithm.
#[test]
fn saturated_nsw_cluster_equals_the_exact_backend_end_to_end() {
    let (k, per_shard, dims, ell, seed) = (3usize, 60usize, 5usize, 7usize, 7u64);
    assert!(per_shard <= NswParams::default().ef_search);
    let shards = vector_shards(k, per_shard, dims, seed);
    let exact = vec_cluster(k, seed, IndexBackend::Exact, Engine::Sync, shards.clone());
    let nsw = vec_cluster(k, seed, IndexBackend::nsw(), Engine::Sync, shards);
    let queries = vector_queries(6, dims, seed);
    for algo in Algorithm::ALL {
        let want = exact.query_batch_with(algo, &queries, ell).expect("exact batch");
        let got = nsw.query_batch_with(algo, &queries, ell).expect("nsw batch");
        assert_eq!(got.metrics, want.metrics, "{algo:?}: protocol costs diverged");
        for (g, w) in got.answers.iter().zip(&want.answers) {
            assert_eq!(g.neighbors, w.neighbors, "{algo:?}: answers diverged");
        }
    }
}

/// **Insert-as-query equivalence.** A cluster bulk-loaded with P and a
/// cluster loaded empty then fed every record of P through
/// `insert_record_into` serve byte-identical batches — answers and
/// per-batch costs — across all three engines and RAYON pool sizes
/// {1, 2, 8}, on both backends.
#[test]
fn bulk_load_equals_empty_then_insert_across_engines_and_pools() {
    let (k, per_shard, dims, ell, seed) = (3usize, 150usize, 6usize, 9usize, 11u64);
    let shards = vector_shards(k, per_shard, dims, seed);
    let queries = vector_queries(5, dims, seed);
    for backend in [IndexBackend::Exact, IndexBackend::nsw()] {
        let mut reference: Option<knn_core::cluster::BatchAnswer> = None;
        for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
            for pool in [1usize, 2, 8] {
                let (bulk, grown) = with_pool(pool, || {
                    let bulk = vec_cluster(k, seed, backend, engine, shards.clone());
                    let empty = vec![Dataset::new(Vec::new()); k];
                    let mut grown = vec_cluster(k, seed, backend, engine, empty);
                    for (m, shard) in shards.iter().enumerate() {
                        for record in &shard.records {
                            grown.insert_record_into(m, record.clone()).expect("insert");
                        }
                    }
                    let bulk = bulk.query_batch(&queries, ell).expect("bulk batch");
                    let grown = grown.query_batch(&queries, ell).expect("grown batch");
                    (bulk, grown)
                });
                let label = format!("{:?}/{engine:?}/pool {pool}", backend.name());
                assert_eq!(bulk.metrics, grown.metrics, "costs diverged: {label}");
                for (b, g) in bulk.answers.iter().zip(&grown.answers) {
                    assert_eq!(b.neighbors, g.neighbors, "answers diverged: {label}");
                }
                let want = reference.get_or_insert(bulk.clone());
                assert_eq!(bulk.metrics, want.metrics, "engine/pool variance: {label}");
                for (b, w) in bulk.answers.iter().zip(&want.answers) {
                    assert_eq!(b.neighbors, w.neighbors, "engine/pool variance: {label}");
                }
            }
        }
    }
}

/// **Acceptance criterion.** `KnnCluster::insert` serves queries over new
/// points without a reload: points inserted into a live NSW cluster in a
/// region the loaded data never touched are found by the very next batch,
/// identically across engines × pools, and in exact agreement with the
/// sequential full-scan oracle.
#[test]
fn live_inserts_serve_without_reload_deterministically() {
    let (k, per_shard, dims, ell, seed) = (3usize, 150usize, 6usize, 5usize, 13u64);
    let shards = vector_shards(k, per_shard, dims, seed);
    // The mixture lives in roughly [-25, 25]^d; the probe region is far out.
    let probe = VecPoint::new(vec![60.0; 6]);
    let mut reference: Option<Vec<knn_core::cluster::Neighbor>> = None;
    for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
        for pool in [1usize, 2, 8] {
            let neighbors = with_pool(pool, || {
                let mut cluster = vec_cluster(k, seed, IndexBackend::nsw(), engine, shards.clone());
                let mut inserted = Vec::new();
                for i in 0..ell {
                    let p = VecPoint::new(vec![60.0 + i as f64 * 0.25; 6]);
                    inserted.push(cluster.insert(p).expect("insert"));
                }
                let batch = cluster.query_batch(std::slice::from_ref(&probe), ell).expect("batch");
                let got = batch.answers[0].neighbors.clone();
                // Every answer is an inserted point — nothing loaded is
                // within 35 units of the probe region.
                for n in &got {
                    assert!(
                        inserted.iter().any(|&(id, m)| id == n.id && m == n.machine),
                        "answer {n:?} is not one of the live inserts"
                    );
                }
                // The sequential path scans the mutated shards directly:
                // the exact oracle agrees over the inserted points.
                let oracle = cluster.query(&probe, ell).expect("oracle");
                assert_eq!(answer_keys(&batch.answers[0]), answer_keys(&oracle));
                got
            });
            let want = reference.get_or_insert(neighbors.clone());
            assert_eq!(&neighbors, want, "{engine:?}/pool {pool} diverged");
        }
    }
}

/// Every NSW claim is genuine at *any* `ef`: a real `(distance, id)` pair
/// of an indexed record, strictly ascending, never more than requested.
#[test]
fn nsw_claims_are_genuine_sorted_and_bounded_at_every_ef() {
    let records = indexed_vec_records(220, 7, 17);
    let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
    let truth: Vec<DistKey> = {
        let q = VecPoint::new(vec![5.0; 7]);
        let mut keys = dist_keys(&records, &q, Metric::Euclidean);
        keys.sort_unstable();
        keys
    };
    let q = VecPoint::new(vec![5.0; 7]);
    for ef in [1usize, 4, 16, 64, 220, 1000] {
        let got = index.search(&records, &q, 12, ef);
        assert!(got.len() <= 12);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "ef {ef}: not strictly ascending");
        for key in &got {
            assert!(truth.binary_search(key).is_ok(), "ef {ef}: fabricated claim {key:?}");
        }
    }
}

/// Deterministic tie-breaks under heavy duplication: many records at the
/// same coordinates, NSW at saturating `ef` returns exactly the oracle's
/// `(distance, id)` order — ties broken by id, stable across repeated calls.
#[test]
fn duplicate_points_break_ties_by_id_exactly() {
    let mut ids = IdAssigner::new(23);
    let records: Vec<Record<VecPoint>> = (0..90)
        .map(|i| Record {
            id: ids.next_id(),
            // 30 distinct locations, each held by 3 records.
            point: VecPoint::new(vec![(i % 30) as f64, ((i % 30) * 2) as f64]),
            label: None,
        })
        .collect();
    let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
    let q = VecPoint::new(vec![7.3, 14.1]);
    for ell in [1usize, 3, 9, 90] {
        let got = index.search(&records, &q, ell, records.len());
        let want = brute_top(&records, &q, ell, Metric::Euclidean);
        assert_eq!(got, want, "ell {ell}");
        assert_eq!(got, index.search(&records, &q, ell, records.len()), "unstable repeat");
    }
}

/// The NSW graph carries [`BitsPoint`] under Hamming distance — the type
/// whose *exact* index is a brute scan — with exact parity at saturating
/// `ef` and useful recall at the default.
#[test]
fn nsw_serves_bits_points_under_hamming() {
    let mut ids = IdAssigner::new(29);
    let records: Vec<Record<BitsPoint>> = (0..200u64)
        .map(|i| Record {
            id: ids.next_id(),
            point: BitsPoint::new(vec![i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i / 7]),
            label: None,
        })
        .collect();
    let index = NswIndex::build(&records, NswParams::default(), Metric::Hamming);
    let mut total = 0.0;
    let queries = 12u64;
    for s in 0..queries {
        let q = BitsPoint::new(vec![s.wrapping_mul(0xD134_2543_DE82_EF95), s]);
        let want = brute_top(&records, &q, 8, Metric::Hamming);
        assert_eq!(index.search(&records, &q, 8, records.len()), want, "ef = n parity");
        total += recall(&index.search(&records, &q, 8, 64), &want);
    }
    let mean = total / queries as f64;
    assert!(mean >= 0.8, "bits mean recall {mean} too low at default ef");
}

/// A [`ShardIndex`] asked for a metric other than its NSW build metric must
/// not use the graph (its geometry is wrong) — it falls back to the exact
/// scan, byte-identical to the oracle.
#[test]
fn metric_mismatch_falls_back_to_the_exact_scan() {
    let records = indexed_vec_records(80, 4, 31);
    let shard: ShardIndex<VecPoint> =
        ShardIndex::build(&records, IndexBackend::nsw(), Metric::Euclidean);
    let q = VecPoint::new(vec![12.0; 4]);
    for metric in [Metric::Manhattan, Metric::Chebyshev, Metric::Hamming] {
        let got = shard.top(&records, &q, 6, metric);
        assert_eq!(got, brute_top(&records, &q, 6, metric), "{metric:?}");
    }
}

fn indexed_vec_records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
    let mut ids = IdAssigner::new(seed);
    uniform_cube(n, dims, -40.0, 40.0, seed)
        .into_iter()
        .map(|point| Record { id: ids.next_id(), point, label: None })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Oracle recall property suite over dims {1..8} × seeds: at the
    /// default `ef` the NSW top-ℓ keeps its recall floor against the
    /// brute-force oracle, at `ef = n` it *equals* the oracle, and both
    /// searches are deterministic and strictly `(distance, id)`-ordered.
    #[test]
    fn prop_nsw_recall_and_exact_parity(
        dims in 1usize..=8,
        n in 1usize..260,
        ell in 1usize..14,
        seed in any::<u32>(),
    ) {
        let records = indexed_vec_records(n, dims, u64::from(seed));
        let params = NswParams::default();
        let index = NswIndex::build(&records, params, Metric::Euclidean);
        prop_assert_eq!(index.len(), n);
        let q = VecPoint::new(
            (0..dims).map(|d| ((seed as usize + d * 17) % 80) as f64 - 40.0).collect::<Vec<f64>>(),
        );
        let want = brute_top(&records, &q, ell, Metric::Euclidean);

        // ef = n: structural exactness.
        let exact = index.search(&records, &q, ell, n);
        prop_assert_eq!(&exact, &want, "ef = n must be oracle parity");

        // Default ef: genuine, sorted, deterministic, recall-floored.
        let got = index.search(&records, &q, ell, params.ef_search);
        prop_assert_eq!(&got, &index.search(&records, &q, ell, params.ef_search));
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        let r = recall(&got, &want);
        // ef_search = 64 covers shards up to n = 64 exactly; beyond that
        // the graph search keeps a high floor on uniform data.
        if n <= params.ef_search {
            prop_assert!((r - 1.0).abs() < f64::EPSILON, "saturated ef must be exact, recall {}", r);
        } else {
            prop_assert!(r >= 0.6, "recall {} collapsed at default ef (n {}, dims {})", r, n, dims);
        }
    }

    /// Bulk-build vs incremental insert is graph-identical for every point
    /// type shape — the insert-as-query property at the index level.
    #[test]
    fn prop_bulk_equals_incremental(
        n in 1usize..160,
        dims in 1usize..6,
        seed in any::<u32>(),
    ) {
        let records = indexed_vec_records(n, dims, u64::from(seed) ^ 0x5ca1ab1e);
        let bulk = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let mut grown = NswIndex::new(NswParams::default(), Metric::Euclidean);
        for pos in 0..records.len() {
            grown.insert(&records, pos);
        }
        prop_assert_eq!(bulk, grown);
    }

    /// The scalar NSW graph against the scalar exact oracle — the 1-d
    /// specialization whose exact index (sorted array) is the sharpest
    /// available cross-check.
    #[test]
    fn prop_scalar_nsw_matches_sorted_array_at_saturating_ef(
        values in proptest::collection::vec(any::<u32>(), 1..120),
        q in any::<u32>(),
        ell in 1usize..20,
        seed in 0u64..50,
    ) {
        let mut ids = IdAssigner::new(seed);
        let records: Vec<Record<ScalarPoint>> = values
            .iter()
            .map(|&v| Record { id: ids.next_id(), point: ScalarPoint(u64::from(v)), label: None })
            .collect();
        let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let got = index.search(&records, &ScalarPoint(u64::from(q)), ell, records.len());
        let shard: ShardIndex<ScalarPoint> =
            ShardIndex::build(&records, IndexBackend::Exact, Metric::Euclidean);
        let want = shard.top(&records, &ScalarPoint(u64::from(q)), ell, Metric::Euclidean);
        prop_assert_eq!(got, want);
    }
}
