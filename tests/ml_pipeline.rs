//! The ML layer end to end: distributed k-NN classification and
//! regression over a simulated cluster.

use knn_repro::core::ml::{KnnClassifier, KnnRegressor};
use knn_repro::prelude::*;

#[test]
fn classifier_recovers_well_separated_clusters() {
    let mixture = GaussianMixture { dims: 3, clusters: 3, spread: 0.5, range: 15.0 };
    let train = mixture.generate_with(900, 1, 100);
    let test = mixture.generate_with(60, 1, 200);

    let mut ids = IdAssigner::new(1);
    let data = Dataset::from_labeled(train, &mut ids);
    let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder().machines(6).seed(2).build();
    cluster.load(data, PartitionStrategy::Shuffled);

    let classifier = KnnClassifier::new(cluster, 9);
    let mut correct = 0;
    for (p, label) in &test {
        let Label::Class(truth) = label else { unreachable!() };
        if classifier.predict(p).unwrap() == Some(*truth) {
            correct += 1;
        }
    }
    assert!(correct >= 55, "accuracy too low: {correct}/60");
}

#[test]
fn regressor_tracks_smooth_target() {
    let gen = GaussianMixture { dims: 2, clusters: 1, spread: 1.0, range: 8.0 };
    let train = gen.generate_regression(2000, 0.2, 5);
    let test = gen.generate_regression(50, 0.0, 6);

    let mut ids = IdAssigner::new(2);
    let data = Dataset::from_labeled(train, &mut ids);
    let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder().machines(5).seed(3).build();
    cluster.load(data, PartitionStrategy::Shuffled);

    for weighted in [false, true] {
        let regressor = if weighted {
            KnnRegressor::new(rebuild(&test), 8).weighted()
        } else {
            KnnRegressor::new(rebuild(&test), 8)
        };
        // rebuild() gives a fresh identical cluster since KnnRegressor
        // takes ownership; see helper below.
        let mut sq = 0.0;
        for (p, label) in &test {
            let Label::Value(truth) = label else { unreachable!() };
            let pred = regressor.predict(p).unwrap().expect("labeled data");
            sq += (pred - truth) * (pred - truth);
        }
        let rmse = (sq / test.len() as f64).sqrt();
        assert!(rmse < 1.5, "weighted={weighted}: RMSE {rmse}");
    }

    fn rebuild(_test: &[(VecPoint, Label)]) -> KnnCluster<VecPoint> {
        let gen = GaussianMixture { dims: 2, clusters: 1, spread: 1.0, range: 8.0 };
        let train = gen.generate_regression(2000, 0.2, 5);
        let mut ids = IdAssigner::new(2);
        let data = Dataset::from_labeled(train, &mut ids);
        let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder().machines(5).seed(3).build();
        cluster.load(data, PartitionStrategy::Shuffled);
        cluster
    }
}

#[test]
fn unlabeled_data_predicts_none() {
    let mut ids = IdAssigner::new(3);
    let data = Dataset::from_points((0..100).map(ScalarPoint).collect(), &mut ids);
    let mut cluster: KnnCluster = KnnCluster::builder().machines(3).seed(1).build();
    cluster.load(data, PartitionStrategy::RoundRobin);
    let classifier = KnnClassifier::new(cluster, 5);
    assert_eq!(classifier.predict(&ScalarPoint(50)).unwrap(), None);
}

#[test]
fn labels_survive_distribution_across_machines() {
    // Label resolution crosses the shard index: every neighbor must carry
    // the label it was loaded with.
    let mixture = GaussianMixture { dims: 2, clusters: 4, spread: 0.3, range: 20.0 };
    let train = mixture.generate(400, 9);
    let mut ids = IdAssigner::new(4);
    let data = Dataset::from_labeled(train.clone(), &mut ids);
    let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder().machines(8).seed(5).build();
    cluster.load(data, PartitionStrategy::Shuffled);

    let ans = cluster.query(&train[0].0, 10).unwrap();
    assert!(ans.neighbors.iter().all(|n| n.label.is_some()));
    // The nearest neighbor of a training point is itself (distance 0).
    assert_eq!(ans.neighbors[0].dist, Dist::ZERO);
    assert_eq!(ans.neighbors[0].label, Some(train[0].1));
}
