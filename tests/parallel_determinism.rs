//! Determinism under real parallelism.
//!
//! The rayon shim runs pipelines on a genuine work-stealing pool, the
//! workload generators / cluster load path ride on it, and the event engine
//! additionally schedules machines on a worker pool sized from it. These
//! tests pin the contract that makes all of that safe: **pool size is a
//! pure wall-clock knob** — every generated dataset, every query answer,
//! and every engine `RunOutcome` (outputs *and* metrics) is bit-identical
//! at pool sizes 1, 2, and 8, on the sync, threaded, and event engines.

use kmachine::engine::{run_event, run_sync, run_threaded};
use kmachine::{
    BandwidthMode, Ctx, MuxOutput, MuxProtocol, NetConfig, Payload, Protocol, RunMetrics,
    RunOutcome, Step,
};
use knn_core::cluster::{KnnCluster, Neighbor};
use knn_core::runner::Algorithm;
use knn_points::{ScalarPoint, VecPoint};
use knn_workloads::{GaussianMixture, ScalarWorkload};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

const POOLS: [usize; 3] = [1, 2, 8];
const ENGINES: [kmachine::Engine; 3] =
    [kmachine::Engine::Sync, kmachine::Engine::Threaded, kmachine::Engine::Event];

fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

/// Build a scalar cluster and answer one batch + one single query; returns
/// everything observable (answers and aggregate metrics).
#[allow(clippy::type_complexity)]
fn scalar_pipeline(
    engine: kmachine::Engine,
    seed: u64,
    k: usize,
    ell: usize,
    algo: Algorithm,
) -> (Vec<Vec<Neighbor>>, RunMetrics, Vec<Neighbor>, RunMetrics) {
    let shards = ScalarWorkload::small(512).generate(k, seed);
    let mut cluster: KnnCluster =
        KnnCluster::builder().machines(k).seed(seed).engine(engine).build();
    cluster.load_shards(shards).expect("shard count");
    let queries: Vec<ScalarPoint> =
        (0..6u64).map(|i| ScalarPoint(seed.wrapping_mul(31).wrapping_add(i * 977))).collect();
    let batch = cluster.query_batch_with(algo, &queries, ell).expect("batch");
    let single = cluster.query_with(algo, &queries[0], ell).expect("single");
    (
        batch.answers.into_iter().map(|a| a.neighbors).collect(),
        batch.metrics,
        single.neighbors,
        single.metrics,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full serving pipeline — parallel generation, parallel index
    /// build, mux'd batch run — is bit-identical across pool sizes on all
    /// three engines.
    #[test]
    fn prop_pipeline_identical_across_pool_sizes(
        seed in 0u64..1000,
        k in 2usize..6,
        ell in 1usize..24,
    ) {
        for algo in [Algorithm::Simple, Algorithm::Knn] {
            let reference = with_pool(1, || {
                scalar_pipeline(kmachine::Engine::Sync, seed, k, ell, algo)
            });
            for engine in ENGINES {
                for pool in POOLS {
                    let got = with_pool(pool, || scalar_pipeline(engine, seed, k, ell, algo));
                    prop_assert_eq!(
                        &got.0, &reference.0,
                        "batch answers diverged: pool {}, {:?}, {:?}", pool, engine, algo
                    );
                    prop_assert_eq!(
                        &got.1, &reference.1,
                        "batch metrics diverged: pool {}, {:?}, {:?}", pool, engine, algo
                    );
                    prop_assert_eq!(
                        &got.2, &reference.2,
                        "single answer diverged: pool {}, {:?}, {:?}", pool, engine, algo
                    );
                    prop_assert_eq!(
                        &got.3, &reference.3,
                        "single metrics diverged: pool {}, {:?}, {:?}", pool, engine, algo
                    );
                }
            }
        }
    }
}

/// Worker i streams `payload` tagged values toward a rotating target while
/// drawing from its RNG — enough nondeterminism bait (bandwidth contention,
/// multiple instances, random draws) to catch any scheduling leak.
#[derive(Clone)]
struct StreamSum {
    payload: u64,
    acc: u64,
    finished: usize,
}

#[derive(Debug, Clone)]
enum SsMsg {
    Val(u64),
    Last,
    Ack(u64),
}

impl Payload for SsMsg {
    fn size_bits(&self) -> u64 {
        match self {
            SsMsg::Val(_) | SsMsg::Ack(_) => 64,
            SsMsg::Last => 1,
        }
    }
}

impl Protocol for StreamSum {
    type Msg = SsMsg;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, SsMsg>) -> Step<u64> {
        use rand::RngExt;
        if ctx.id() != 0 {
            if ctx.round() == 0 {
                for _ in 0..self.payload {
                    let v: u64 = ctx.rng().random_range(0..1_000_000);
                    ctx.send(0, SsMsg::Val(v));
                }
                ctx.send(0, SsMsg::Last);
                return Step::Continue;
            }
            if let Some(&SsMsg::Ack(total)) = ctx.first_from(0) {
                return Step::Done(total);
            }
            return Step::Continue;
        }
        for env in ctx.inbox() {
            match env.msg {
                SsMsg::Val(v) => self.acc += v,
                SsMsg::Last => self.finished += 1,
                SsMsg::Ack(_) => unreachable!("leader never receives an ack"),
            }
        }
        if self.finished == ctx.k() - 1 {
            ctx.broadcast(SsMsg::Ack(self.acc));
            Step::Done(self.acc)
        } else {
            Step::Continue
        }
    }
}

fn mux_run(engine: kmachine::Engine, seed: u64) -> RunOutcome<MuxOutput<u64>> {
    let k = 4;
    let cfg = NetConfig::new(k)
        .with_seed(seed)
        .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 });
    let protos: Vec<MuxProtocol<StreamSum>> = (0..k)
        .map(|_| {
            MuxProtocol::new(
                [3u64, 9, 1, 6]
                    .iter()
                    .map(|&p| StreamSum { payload: p, acc: 0, finished: 0 })
                    .collect(),
            )
        })
        .collect();
    engine.run(&cfg, protos).expect("mux run")
}

/// Raw engine-level `RunOutcome` (outputs + metrics) is bit-identical
/// across pool sizes on all three engines, including per-tag attribution.
/// For the event engine the pool size additionally sizes its scheduler's
/// worker pool, so this is the 3-engine × pool {1, 2, 8} matrix of the
/// barrier-removal contract.
#[test]
fn mux_run_outcome_identical_across_pool_sizes() {
    for seed in [1u64, 42, 977] {
        let reference = with_pool(1, || mux_run(kmachine::Engine::Sync, seed));
        for engine in ENGINES {
            for pool in POOLS {
                let got = with_pool(pool, || mux_run(engine, seed));
                assert_eq!(got.outputs, reference.outputs, "pool {pool}, {engine:?}");
                assert_eq!(got.metrics, reference.metrics, "pool {pool}, {engine:?}");
            }
        }
    }
}

/// The raw engine runs above go through `Engine::run`; pin the free
/// functions too, since the bench bins call them directly.
#[test]
fn free_function_engines_agree() {
    let cfg = NetConfig::new(3)
        .with_seed(5)
        .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
    let mk = || (0..3).map(|_| StreamSum { payload: 7, acc: 0, finished: 0 }).collect::<Vec<_>>();
    let a = run_sync(&cfg, mk()).expect("sync");
    let b = run_threaded(&cfg, mk()).expect("threaded");
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.metrics, b.metrics);
    let c = run_event(&cfg, mk()).expect("event");
    assert_eq!(a.outputs, c.outputs);
    assert_eq!(a.metrics, c.metrics);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Metrics conservation under the event engine: with machines running
    /// rounds ahead of each other (skewed payloads over enforced bandwidth,
    /// multi-worker scheduling), the per-tag message/bit totals of a mux'd
    /// run still partition the aggregate `RunMetrics` exactly, and the
    /// whole metrics struct matches `run_sync` byte for byte.
    #[test]
    fn prop_event_mux_metrics_conserve_and_match_sync(
        seed in any::<u64>(),
        k in 2usize..6,
        payloads in proptest::collection::vec(0u64..32, 1..6),
    ) {
        let cfg = NetConfig::new(k)
            .with_seed(seed)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 });
        let mk = || {
            (0..k)
                .map(|_| {
                    MuxProtocol::new(
                        payloads
                            .iter()
                            .map(|&p| StreamSum { payload: p, acc: 0, finished: 0 })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let want = run_sync(&cfg, mk()).expect("sync mux run");
        for pool in POOLS {
            let got = with_pool(pool, || run_event(&cfg, mk())).expect("event mux run");
            prop_assert_eq!(&got.outputs, &want.outputs, "outputs diverged at pool {}", pool);
            prop_assert_eq!(&got.metrics, &want.metrics, "metrics diverged at pool {}", pool);
            // Every message of a mux'd run carries a tag, so the per-tag
            // table is a partition of the aggregate, not just a subset.
            prop_assert_eq!(got.metrics.per_tag.len(), payloads.len());
            let tag_msgs: u64 = got.metrics.per_tag.iter().map(|t| t.messages).sum();
            let tag_bits: u64 = got.metrics.per_tag.iter().map(|t| t.bits).sum();
            prop_assert_eq!(tag_msgs, got.metrics.messages, "per-tag messages must partition");
            prop_assert_eq!(tag_bits, got.metrics.bits, "per-tag bits must partition");
        }
    }
}

/// Vector pipeline (chunked parallel Gaussian generation + parallel k-d
/// tree index build) is pool-size-invariant end to end.
#[test]
fn vector_pipeline_identical_across_pool_sizes() {
    let run = || {
        let gm = GaussianMixture { dims: 3, clusters: 4, spread: 0.4, range: 8.0 };
        let data = gm.generate(600, 11);
        let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder().machines(4).seed(11).build();
        let mut ids = knn_points::IdAssigner::new(11);
        let dataset = knn_points::Dataset::from_labeled(data, &mut ids);
        cluster.load(dataset, knn_workloads::PartitionStrategy::Shuffled);
        let q = VecPoint::new(vec![0.5, -0.25, 1.0]);
        let ans = cluster.query(&q, 9).expect("query");
        (ans.neighbors, ans.metrics)
    };
    let reference = with_pool(1, run);
    for pool in POOLS {
        assert_eq!(with_pool(pool, run), reference, "pool {pool}");
    }
}
