//! Paper-scale smoke: the §3 experimental configuration pushed through
//! generation, load, and one Simple query.
//!
//! Two tiers share one path:
//!
//! * [`scale_quarter_generation_and_query`] runs 2¹⁸ points/machine (4 × 2¹⁸
//!   ≈ 1M points) **in tier-1** — every `cargo test` exercises the scale
//!   path (chunked parallel generation, parallel index build, a global
//!   query over shards) at a size a debug build finishes in seconds;
//! * [`paper_full_generation_and_one_simple_query`] is the paper's full
//!   2²² points/machine (~17M points). Ignored by default — it allocates
//!   gigabytes — run it explicitly with:
//!
//! ```text
//! cargo test --release --test scale_paper_full -- --ignored
//! ```

use knn_core::cluster::KnnCluster;
use knn_core::runner::Algorithm;
use knn_points::ScalarPoint;
use knn_workloads::ScalarWorkload;

/// Generate `k × per_machine` uniform points in `[0, 2³²)`, load them, and
/// answer one global Simple query, asserting the answer is a globally
/// dense, multi-shard top-ℓ.
fn generate_load_query(per_machine: usize) {
    let k = 4;
    let ell = 64;
    let w = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 };

    let shards = w.generate(k, 7);
    assert_eq!(shards.len(), k);
    let total: usize = shards.iter().map(|s| s.len()).sum();
    assert_eq!(total, k * per_machine, "every machine generates its full shard");

    let mut cluster: KnnCluster = KnnCluster::builder().machines(k).seed(7).build();
    cluster.load_shards(shards).expect("shard count matches k");
    assert_eq!(cluster.total_points(), k * per_machine);

    let q = ScalarPoint(1 << 31);
    let ans = cluster.query_with(Algorithm::Simple, &q, ell).expect("query");
    assert_eq!(ans.neighbors.len(), ell);
    assert!(
        ans.neighbors.windows(2).all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)),
        "neighbors ascend by (distance, id)"
    );
    // With n uniform points in [0, 2^32) the expected gap is 2^32 / n, so
    // the 64th-nearest neighbor sits within ~64 gaps of the query with
    // enormous probability; a 16x margin makes the bound a loose sanity
    // check that the answer is genuinely the global top-ell, not one
    // shard's.
    let gap = (1u64 << 32) / (total as u64);
    assert!(
        ans.neighbors.last().expect("ell neighbors").dist.as_u64() < 64 * gap * 16,
        "answers must be globally dense"
    );
    let machines: std::collections::HashSet<_> = ans.neighbors.iter().map(|n| n.machine).collect();
    assert!(machines.len() > 1, "a global answer draws from several shards");
}

/// Tier-1 scale smoke: 2¹⁸ points per machine through the same path the
/// full paper configuration uses.
#[test]
fn scale_quarter_generation_and_query() {
    generate_load_query(1 << 18);
}

#[test]
#[ignore = "paper-scale: ~17M points, run with --release -- --ignored"]
fn paper_full_generation_and_one_simple_query() {
    assert_eq!(ScalarWorkload::paper_full().per_machine, 1 << 22);
    generate_load_query(1 << 22);
}
