//! Full-paper-scale smoke: the §3 experimental configuration (2²² points
//! per machine) pushed through generation, load, and one Simple query.
//!
//! Ignored by default — it allocates gigabytes and takes tens of seconds —
//! run it explicitly with:
//!
//! ```text
//! cargo test --release --test scale_paper_full -- --ignored
//! ```

use knn_core::cluster::KnnCluster;
use knn_core::runner::Algorithm;
use knn_points::ScalarPoint;
use knn_workloads::ScalarWorkload;

#[test]
#[ignore = "paper-scale: ~17M points, run with --release -- --ignored"]
fn paper_full_generation_and_one_simple_query() {
    let k = 4;
    let ell = 64;
    let w = ScalarWorkload::paper_full();
    assert_eq!(w.per_machine, 1 << 22);

    let shards = w.generate(k, 7);
    assert_eq!(shards.len(), k);
    let total: usize = shards.iter().map(|s| s.len()).sum();
    assert_eq!(total, k << 22, "every machine generates 2^22 points");

    let mut cluster: KnnCluster = KnnCluster::builder().machines(k).seed(7).build();
    cluster.load_shards(shards).expect("shard count matches k");
    assert_eq!(cluster.total_points(), k << 22);

    let q = ScalarPoint(1 << 31);
    let ans = cluster.query_with(Algorithm::Simple, &q, ell).expect("query");
    assert_eq!(ans.neighbors.len(), ell);
    assert!(
        ans.neighbors.windows(2).all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)),
        "neighbors ascend by (distance, id)"
    );
    // At 2^24 uniform points in [0, 2^32) the expected gap is 2^8, so the
    // 64th-nearest neighbor sits within ~2^13 of the query with enormous
    // probability — a loose sanity bound that the answer is genuinely the
    // global top-ell, not one shard's.
    assert!(
        ans.neighbors.last().expect("ell neighbors").dist.as_u64() < 1 << 16,
        "paper_full answers must be globally dense"
    );
    let machines: std::collections::HashSet<_> = ans.neighbors.iter().map(|n| n.machine).collect();
    assert!(machines.len() > 1, "a global answer draws from several shards");
}
