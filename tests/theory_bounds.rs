//! Statistical validation of the paper's theorems on measured executions.
//!
//! These are the same checks EXPERIMENTS.md reports at larger scale; here
//! they run at CI-friendly sizes with generous (but meaningful) envelopes.

use knn_repro::prelude::*;

fn run(k: usize, per_machine: usize, ell: usize, seed: u64) -> KnnAnswer {
    let shards =
        ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 }.generate(k, seed.wrapping_mul(31));
    let mut cluster: KnnCluster = KnnCluster::builder().machines(k).seed(seed).build();
    cluster.load_shards(shards).unwrap();
    cluster.query(&ScalarPoint(1 << 31), ell).unwrap()
}

/// Theorem 2.4: O(log ℓ) rounds. The constant is implementation-specific;
/// what must hold is that rounds grow ~logarithmically: quadrupling ℓ
/// should add roughly a constant, never multiply.
#[test]
fn theorem_2_4_rounds_grow_logarithmically_in_ell() {
    let avg_rounds = |ell: usize| -> f64 {
        (0..5).map(|s| run(8, 4096, ell, s).metrics.rounds).sum::<u64>() as f64 / 5.0
    };
    let r256 = avg_rounds(256);
    let r1024 = avg_rounds(1024);
    assert!(
        r1024 < r256 * 2.0,
        "rounds should grow ~log ell: ell=256 -> {r256}, ell=1024 -> {r1024}"
    );
}

/// Theorem 2.4: round complexity is independent of k.
#[test]
fn theorem_2_4_rounds_independent_of_k() {
    let avg_rounds = |k: usize| -> f64 {
        (0..5).map(|s| run(k, 2048, 128, s).metrics.rounds).sum::<u64>() as f64 / 5.0
    };
    let r4 = avg_rounds(4);
    let r32 = avg_rounds(32);
    // 8x more machines: rounds should stay in the same ballpark.
    assert!(r32 < r4 * 2.0, "rounds must not scale with k: k=4 -> {r4}, k=32 -> {r32}");
}

/// Theorem 2.4: O(k log ℓ) messages — linear in k at fixed ℓ.
#[test]
fn theorem_2_4_messages_linear_in_k() {
    let avg_msgs = |k: usize| -> f64 {
        (0..5).map(|s| run(k, 2048, 128, s).metrics.messages).sum::<u64>() as f64 / 5.0
    };
    let m8 = avg_msgs(8);
    let m32 = avg_msgs(32);
    let ratio = m32 / m8;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x machines should give ~4x messages: {m8} -> {m32} (ratio {ratio:.2})"
    );
}

/// Lemma 2.3: pruning leaves at most 11ℓ candidates whp; the hardening
/// fallback should essentially never fire with the paper's constants at a
/// healthy n ≫ kℓ.
#[test]
fn lemma_2_3_survivor_bound_and_no_rollback() {
    let mut max_ratio = 0.0f64;
    for seed in 0..10 {
        let ans = run(16, 4096, 256, seed);
        let stats = ans.stats.expect("leader stats");
        assert!(!stats.rolled_back, "seed {seed} rolled back");
        assert!(stats.survivors >= 256);
        max_ratio = max_ratio.max(stats.survivors as f64 / 256.0);
    }
    assert!(max_ratio <= 11.0, "survivors/ell = {max_ratio} exceeds Lemma 2.3's bound");
}

/// §1.3: the simple method costs Θ(ℓ) rounds — it must scale linearly,
/// and Algorithm 2 must beat it beyond the crossover.
#[test]
fn simple_method_rounds_linear_and_beaten_past_crossover() {
    let k = 8;
    let shards = ScalarWorkload { per_machine: 1 << 14, lo: 0, hi: 1 << 32 }.generate(k, 3);
    let mut cluster: KnnCluster = KnnCluster::builder().machines(k).seed(2).build();
    cluster.load_shards(shards).unwrap();
    let q = ScalarPoint(1 << 31);

    let simple = |ell: usize| cluster.query_with(Algorithm::Simple, &q, ell).unwrap().metrics;
    let s512 = simple(512);
    let s2048 = simple(2048);
    let ratio = s2048.rounds as f64 / s512.rounds as f64;
    assert!((2.5..6.0).contains(&ratio), "4x ell should ~4x simple rounds, got {ratio:.2}");

    let fast = cluster.query_with(Algorithm::Knn, &q, 2048).unwrap().metrics;
    assert!(
        fast.rounds < s2048.rounds,
        "Algorithm 2 ({}) must beat simple ({}) at ell = 2048",
        fast.rounds,
        s2048.rounds
    );
    assert!(fast.messages < s2048.messages);
}

/// The embedded Algorithm 1 should need O(log ℓ) pivot iterations —
/// Theorem 2.2's expectation is ~3·log_{3/2}, i.e. well under 60 for the
/// post-pruning candidate sets here.
#[test]
fn theorem_2_2_iteration_count_envelope() {
    for seed in 0..10 {
        let ans = run(8, 4096, 512, seed);
        let stats = ans.stats.expect("stats");
        assert!(
            stats.select_iterations <= 60,
            "seed {seed}: {} iterations for ~11*512 candidates",
            stats.select_iterations
        );
    }
}
